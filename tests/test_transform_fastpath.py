"""Property tests: the sort-free O(m) transforms are buffer-identical to a
full rebuild.

``keep_edges`` / ``delete_edges`` / ``remove_vertices`` derive the child's
CSR arrays from the parent's without a ``lexsort``; these tests assert the
result is *bit-identical* — every buffer, including ``arc_edge_ids`` order
— to both the legacy constructor rebuild (``_keep_edges_rebuild``) and a
``from_edges`` rebuild, over random directed/undirected, weighted and
unweighted graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.csr import CSRGraph


@st.composite
def random_graphs(draw, max_n=28, max_m=110):
    """Random graphs across the four (directed × weighted) quadrants."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    directed = draw(st.booleans())
    weighted = draw(st.booleans())
    weights = None
    if weighted:
        weights = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=m,
                max_size=m,
            )
        )
    return CSRGraph.from_edges(n, src, dst, weights, directed=directed)


def assert_buffers_identical(a: CSRGraph, b: CSRGraph) -> None:
    assert a.n == b.n and a.directed == b.directed
    assert np.array_equal(a.edge_src, b.edge_src)
    assert np.array_equal(a.edge_dst, b.edge_dst)
    if a.edge_weights is None:
        assert b.edge_weights is None
    else:
        assert np.array_equal(a.edge_weights, b.edge_weights)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.arc_edge_ids, b.arc_edge_ids)
    for name in ("edge_src", "edge_dst", "indptr", "indices", "arc_edge_ids"):
        assert getattr(a, name).dtype == getattr(b, name).dtype


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_keep_edges_identical_to_rebuild(g, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random(g.num_edges) < rng.uniform(0.0, 1.0)
    fast = g.keep_edges(mask)
    legacy = g._keep_edges_rebuild(mask)
    w = None if g.edge_weights is None else g.edge_weights[mask]
    from_scratch = CSRGraph.from_edges(
        g.n, g.edge_src[mask], g.edge_dst[mask], w, directed=g.directed
    )
    assert_buffers_identical(fast, legacy)
    assert_buffers_identical(fast, from_scratch)
    fast.validate()


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_keep_edges_all_and_none(g):
    everything = g.keep_edges(np.ones(g.num_edges, dtype=bool))
    assert_buffers_identical(everything, g)
    nothing = g.keep_edges(np.zeros(g.num_edges, dtype=bool))
    assert nothing.num_edges == 0 and nothing.n == g.n
    nothing.validate()


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_delete_edges_identical_to_rebuild(g, seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(0, g.num_edges + 1))
    victims = rng.choice(g.num_edges, size=k, replace=True) if k else []
    fast = g.delete_edges(victims)
    mask = np.ones(g.num_edges, dtype=bool)
    mask[np.asarray(victims, dtype=np.int64)] = False
    assert_buffers_identical(fast, g._keep_edges_rebuild(mask))
    fast.validate()


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_remove_vertices_identical_to_rebuild(g, seed):
    rng = np.random.default_rng(seed)
    victims = np.flatnonzero(rng.random(g.n) < 0.3)
    gone = np.zeros(g.n, dtype=bool)
    gone[victims] = True
    edge_mask = ~(gone[g.edge_src] | gone[g.edge_dst])

    fast = g.remove_vertices(victims)
    assert_buffers_identical(fast, g._keep_edges_rebuild(edge_mask))
    fast.validate()

    # relabel=True against the legacy monotone-renumber rebuild.
    relabeled = g.remove_vertices(victims, relabel=True)
    sub = g._keep_edges_rebuild(edge_mask)
    new_id = np.cumsum(~gone) - 1
    w = sub.edge_weights
    legacy = CSRGraph(
        int((~gone).sum()),
        new_id[sub.edge_src],
        new_id[sub.edge_dst],
        w,
        directed=g.directed,
    )
    assert_buffers_identical(relabeled, legacy)
    relabeled.validate()


@given(random_graphs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_with_weights_shares_structure(g, seed):
    rng = np.random.default_rng(seed)
    w = rng.random(g.num_edges)
    gw = g.with_weights(w)
    assert gw.indptr is g.indptr and gw.indices is g.indices
    assert gw.arc_edge_ids is g.arc_edge_ids
    assert np.array_equal(gw.edge_weights, w)
    gw.validate()
    back = gw.with_weights(None)
    assert back.edge_weights is None
    assert_buffers_identical(
        back, CSRGraph(g.n, g.edge_src, g.edge_dst, None, directed=g.directed)
    )


@st.composite
def graph_and_insert_batch(draw):
    """A parent graph plus a valid batch of fresh edges (maybe growing n)."""
    g = draw(random_graphs(max_n=20, max_m=60))
    grow = draw(st.integers(0, 4))
    n_new = g.n + grow
    present = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n_new - 1), st.integers(0, n_new - 1)),
            max_size=25,
        )
    )
    fresh: list[tuple[int, int]] = []
    seen: set = set()
    for u, v in pairs:
        if u == v:
            continue
        p = (u, v) if g.directed else (min(u, v), max(u, v))
        if p in present or p in seen:
            continue
        seen.add(p)
        fresh.append(p)
    weights = None
    if g.is_weighted:
        weights = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=len(fresh),
                max_size=len(fresh),
            )
        )
    return g, fresh, weights, n_new


@given(graph_and_insert_batch())
@settings(max_examples=120, deadline=None)
def test_insert_edges_identical_to_from_edges(batch):
    g, fresh, weights, n_new = batch
    src = [p[0] for p in fresh]
    dst = [p[1] for p in fresh]
    fast = g.insert_edges(src, dst, weights, num_vertices=n_new)

    all_src = np.concatenate([g.edge_src, np.asarray(src, dtype=np.int64)])
    all_dst = np.concatenate([g.edge_dst, np.asarray(dst, dtype=np.int64)])
    w = None
    if g.is_weighted:
        w = np.concatenate(
            [g.edge_weights, np.asarray(weights, dtype=np.float64)]
        )
    from_scratch = CSRGraph.from_edges(
        n_new, all_src, all_dst, w, directed=g.directed
    )
    assert_buffers_identical(fast, from_scratch)
    fast.validate()


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_insert_edges_empty_batch(g):
    # No batch, no growth: immutability makes returning self safe.
    assert g.insert_edges([], []) is g
    # No batch, growth: isolated vertices appended, buffers shared.
    grown = g.insert_edges([], [], num_vertices=g.n + 3)
    assert grown.n == g.n + 3
    assert grown.indices is g.indices
    assert np.array_equal(grown.indptr[: g.n + 1], g.indptr)
    assert np.all(grown.indptr[g.n:] == g.indptr[-1])
    grown.validate()


class TestInsertEdgesValidation:
    def setup_method(self):
        self.g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3])

    def test_out_of_range_endpoint_named(self):
        with pytest.raises(ValueError, match=r"endpoint 4 of inserted edge"):
            self.g.insert_edges([0], [4])

    def test_negative_endpoint_rejected_not_wrapped(self):
        # numpy would read -1 as "last vertex"; the contract forbids it.
        with pytest.raises(ValueError, match=r"endpoint -1 of inserted edge"):
            self.g.insert_edges([-1], [2])

    def test_self_loop_named(self):
        with pytest.raises(ValueError, match=r"self-loop \(2, 2\)"):
            self.g.insert_edges([2], [2])

    def test_duplicate_in_batch_named(self):
        with pytest.raises(ValueError, match=r"duplicate edge \(0, 3\)"):
            self.g.insert_edges([0, 3], [3, 0])  # same undirected edge

    def test_already_present_named(self):
        with pytest.raises(ValueError, match=r"edge \(1, 2\) is already present"):
            self.g.insert_edges([2], [1])

    def test_num_vertices_cannot_shrink(self):
        with pytest.raises(ValueError, match="may not shrink"):
            self.g.insert_edges([], [], num_vertices=3)

    def test_weighted_graph_requires_weights(self):
        wg = self.g.with_weights([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="must carry weights"):
            wg.insert_edges([0], [3])

    def test_unweighted_graph_rejects_weights(self):
        with pytest.raises(ValueError, match="may not carry weights"):
            self.g.insert_edges([0], [3], [1.5])

    def test_weight_length_must_match(self):
        wg = self.g.with_weights([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="match the number of inserted"):
            wg.insert_edges([0], [3], [1.0, 2.0])


class TestDeleteEdgesValidation:
    def setup_method(self):
        self.g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3])

    def test_negative_edge_id_rejected(self):
        with pytest.raises(ValueError, match=r"edge id -1 out of range"):
            self.g.delete_edges([-1])

    def test_out_of_range_edge_id_rejected(self):
        with pytest.raises(ValueError, match=r"edge id 3 out of range"):
            self.g.delete_edges([0, 3])

    def test_error_names_the_offending_id(self):
        with pytest.raises(ValueError, match=r"edge id -7"):
            self.g.delete_edges([1, -7, 2])

    def test_valid_ids_still_work(self):
        assert self.g.delete_edges([0, 0, 2]).num_edges == 1

    def test_empty_is_noop(self):
        assert self.g.delete_edges([]).num_edges == 3


class TestRemoveVerticesValidation:
    def setup_method(self):
        self.g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3])

    def test_negative_vertex_id_rejected(self):
        with pytest.raises(ValueError, match=r"vertex id -2 out of range"):
            self.g.remove_vertices([-2])

    def test_out_of_range_vertex_id_rejected(self):
        with pytest.raises(ValueError, match=r"vertex id 4 out of range"):
            self.g.remove_vertices([4])


def test_with_weights_validates_length():
    g = CSRGraph.from_edges(3, [0, 1], [1, 2])
    with pytest.raises(ValueError, match="match the number of edges"):
        g.with_weights([1.0])
