"""Tests for the differential oracles: naive references vs the engine."""

import dataclasses
import math

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.components import connected_components
from repro.algorithms.kcore import core_numbers
from repro.algorithms.mst import kruskal
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import delta_stepping, dijkstra
from repro.algorithms.triangles import count_triangles, triangles_per_vertex
from repro.graphs import generators as gen
from repro.graphs.weights import with_uniform_weights
from repro.verify import oracles
from repro.verify.oracles import ORACLES


class TestAdjacency:
    def test_undirected_both_directions(self, tiny):
        adj = oracles.adjacency(tiny)
        assert sorted(v for v, _ in adj[0]) == [1, 2]
        assert sorted(v for v, _ in adj[2]) == [0, 1]
        assert [w for _, w in adj[0]] == [1.0, 1.0]

    def test_directed_out_only(self):
        g = gen.rmat(4, 2, seed=0, directed=True)
        adj = oracles.adjacency(g)
        assert sum(len(lst) for lst in adj.values()) == g.num_edges

    def test_weights_flow_through(self, tiny):
        w = with_uniform_weights(tiny, seed=0)
        adj = oracles.adjacency(w)
        weights = sorted(wt for lst in adj.values() for _, wt in lst)
        # every canonical edge weight appears twice (both directions)
        assert len(weights) == 2 * w.num_edges


class TestIndividualOracles:
    def test_bfs_levels_match_engine(self, plc300):
        assert oracles.oracle_bfs_levels(plc300, 0) == bfs(plc300, 0).level.tolist()

    def test_sssp_matches_dijkstra_and_delta(self):
        g = with_uniform_weights(gen.powerlaw_cluster(80, 3, 0.4, seed=3), seed=1)
        ref = oracles.oracle_sssp_distances(g, 0)
        assert np.allclose(dijkstra(g, 0).distance, ref)
        assert np.allclose(delta_stepping(g, 0).distance, ref)

    def test_sssp_disconnected_inf(self):
        g = gen.disjoint_union(gen.path_graph(3), gen.path_graph(3))
        ref = oracles.oracle_sssp_distances(g, 0)
        assert ref[2] == 2.0
        assert math.isinf(ref[4])

    def test_pagerank_close_to_engine(self, plc300):
        ref = oracles.oracle_pagerank(plc300)
        eng = pagerank(plc300).ranks
        assert np.allclose(eng, ref, atol=1e-8)
        assert math.isclose(sum(ref), 1.0, rel_tol=1e-9)

    def test_pagerank_dangling_mass(self):
        # Directed path 0 -> 1 -> 2: vertex 2 is dangling.
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(3, [0, 1], [1, 2], directed=True)
        ref = oracles.oracle_pagerank(g)
        assert np.allclose(pagerank(g).ranks, ref, atol=1e-8)

    def test_component_labels(self):
        g = gen.disjoint_union(gen.cycle_graph(4), gen.path_graph(3), gen.star_graph(5))
        ref = oracles.oracle_component_labels(g)
        res = connected_components(g)
        assert ref == res.labels.tolist()
        assert len(set(ref)) == res.num_components == 3

    def test_triangle_count_and_per_vertex(self, plc300):
        assert oracles.oracle_triangle_count(plc300) == count_triangles(plc300)
        assert (
            oracles.oracle_triangles_per_vertex(plc300)
            == triangles_per_vertex(plc300).tolist()
        )

    def test_clustering_degenerate_degrees(self):
        g = gen.star_graph(5)  # hub degree 4, leaves degree 1: all zero
        assert oracles.oracle_clustering_coefficients(g) == [0.0] * 5
        k4 = gen.complete_graph(4)
        assert oracles.oracle_clustering_coefficients(k4) == [1.0] * 4

    def test_mst_weight(self):
        g = with_uniform_weights(gen.powerlaw_cluster(60, 3, 0.5, seed=2), seed=5)
        assert math.isclose(
            oracles.oracle_mst_weight(g), kruskal(g).total_weight, rel_tol=1e-9
        )

    def test_mst_weight_forest(self):
        g = gen.disjoint_union(gen.path_graph(4), gen.cycle_graph(3))
        # Unweighted: forest weight == n - #components = 7 - 2
        assert oracles.oracle_mst_weight(g) == 5.0

    def test_core_numbers(self, plc300):
        assert (
            oracles.oracle_core_numbers(plc300)
            == core_numbers(plc300).core.tolist()
        )

    def test_core_numbers_known_shapes(self):
        assert oracles.oracle_core_numbers(gen.complete_graph(5)) == [4] * 5
        assert oracles.oracle_core_numbers(gen.path_graph(4)) == [1] * 4
        strip = oracles.oracle_core_numbers(gen.triangle_strip(3))
        assert max(strip) == 2

    def test_degree_counts(self, grid10):
        ref = oracles.oracle_degree_counts(grid10)
        vals, counts = np.unique(grid10.degrees, return_counts=True)
        assert ref == dict(zip(vals.tolist(), counts.tolist()))


class TestOracleTable:
    def test_battery_breadth(self):
        """The acceptance floor: at least 8 oracles, each engine-paired."""
        assert len(ORACLES) >= 8
        for entry in ORACLES.values():
            assert callable(entry.engine) and callable(entry.oracle)
            assert entry.adapter in {
                "scalar",
                "distribution",
                "ordering",
                "vertex_set",
                "traversal",
            }

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_every_entry_agrees_on_fixture(self, name, plc300):
        entry = ORACLES[name]
        assert entry.compare(entry.engine(plc300), entry.oracle(plc300)) == []

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_directed_entries_agree(self, name):
        entry = ORACLES[name]
        if not entry.directed_ok:
            pytest.skip("undirected-only oracle")
        g = gen.rmat(5, 4, seed=1, directed=True)
        assert entry.compare(entry.engine(g), entry.oracle(g)) == []

    def test_broken_oracle_is_caught(self, plc300):
        entry = dataclasses.replace(
            ORACLES["tc"],
            oracle=lambda g: float(oracles.oracle_triangle_count(g) + 1),
        )
        mismatches = entry.compare(entry.engine(plc300), entry.oracle(plc300))
        assert mismatches and "engine=" in mismatches[0]


class TestComparators:
    def test_compare_vector_inf_aware(self):
        inf = float("inf")
        assert oracles.compare_vector([1.0, inf], [1.0, inf]) == []
        assert oracles.compare_vector([1.0, inf], [1.0, 2.0]) != []
        assert oracles.compare_vector([1.0], [1.0, 2.0]) != []

    def test_compare_scalar_modes(self):
        assert oracles.compare_scalar(3.0, 3.0, exact=True) == []
        assert oracles.compare_scalar(3.0, 3.0 + 1e-12) == []  # fp noise ok
        assert oracles.compare_scalar(3.0, 3.0 + 1e-12, exact=True) != []
        assert oracles.compare_scalar(3.0, 4.0) != []

    def test_compare_exact_ints_reports_position(self):
        msgs = oracles.compare_exact_ints([1, 2, 3], [1, 9, 3], label="core")
        assert msgs and "vertex 1" in msgs[0]
