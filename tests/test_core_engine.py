"""Tests for the execution engine, runtime loop, and pipeline."""

import numpy as np
import pytest

from repro.core.engine import run_kernels
from repro.core.kernels import EdgeKernel, TriangleKernel, VertexKernel
from repro.core.pipeline import Pipeline
from repro.core.runtime import SlimGraphRuntime
from repro.core.sg import SG
from repro.compress.uniform import RandomUniformKernel, RandomUniformSampling
from repro.compress.spanner import Spanner
from repro.graphs import generators as gen


class DeleteHighDegreeEdges(EdgeKernel):
    """Toy deterministic kernel: drop edges whose endpoint degrees sum high."""

    def __init__(self, cutoff: int):
        self.cutoff = cutoff

    def __call__(self, e, sg):
        if e.u.deg + e.v.deg > self.cutoff:
            sg.delete(e)


class CountingVertexKernel(VertexKernel):
    def __init__(self):
        self.calls = 0

    def __call__(self, v, sg):
        self.calls += 1


class TestRunKernels:
    def test_vertex_scope_enumerates_all(self, er300):
        kernel = CountingVertexKernel()
        sg = SG(er300)
        result = run_kernels(er300, kernel, sg)
        assert result.num_instances == er300.n
        assert kernel.calls == er300.n

    def test_edge_scope(self, er300):
        sg = SG(er300)
        kernel = DeleteHighDegreeEdges(0)  # deletes everything
        result = run_kernels(er300, kernel, sg)
        assert result.num_deleted_edges == er300.num_edges

    def test_triangle_scope(self, plc300):
        from repro.algorithms.triangles import count_triangles

        class CountT(TriangleKernel):
            def __init__(self):
                self.calls = 0

            def __call__(self, t, sg):
                self.calls += 1

        kernel = CountT()
        run_kernels(plc300, kernel, SG(plc300))
        assert kernel.calls == count_triangles(plc300)

    def test_subgraph_scope_requires_mapping(self, er300):
        from repro.compress.spanner import DeriveSpannerKernel

        with pytest.raises(RuntimeError, match="mapping"):
            run_kernels(er300, DeriveSpannerKernel(), SG(er300))

    def test_unknown_backend(self, er300):
        with pytest.raises(ValueError):
            run_kernels(er300, RandomUniformKernel(), SG(er300, {"p": 0.5}), backend="gpu")

    def test_deterministic_kernel_backend_equivalence(self, er300):
        """A deterministic kernel gives identical results on every backend."""
        outputs = []
        for backend in ("serial", "chunked", "process"):
            sg = SG(er300)
            run_kernels(
                er300, DeleteHighDegreeEdges(12), sg, backend=backend, num_chunks=4, seed=0
            )
            outputs.append(sg.buffer.edge_deleted.copy())
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[0], outputs[2])

    def test_chunked_process_equivalence_random_kernel(self, er300):
        """Random kernels: chunked and process backends merge identically."""
        masks = []
        for backend in ("chunked", "process"):
            sg = SG(er300, {"p": 0.5})
            run_kernels(
                er300, RandomUniformKernel(), sg, backend=backend, num_chunks=4, seed=9
            )
            masks.append(sg.buffer.edge_deleted.copy())
        assert np.array_equal(masks[0], masks[1])

    def test_chunked_worker_count_invariant(self, er300):
        """Same chunk count -> same result regardless of worker processes."""
        sg1 = SG(er300, {"p": 0.4})
        run_kernels(er300, RandomUniformKernel(), sg1, backend="chunked", num_chunks=3, seed=5)
        sg2 = SG(er300, {"p": 0.4})
        run_kernels(er300, RandomUniformKernel(), sg2, backend="chunked", num_chunks=3, seed=5)
        assert np.array_equal(sg1.buffer.edge_deleted, sg2.buffer.edge_deleted)


class TestElementSpace:
    """Views are enumerated lazily — no up-front n/m-sized Python list."""

    def test_views_are_generated_on_demand(self, er300):
        from repro.core.engine import _ElementSpace

        space = _ElementSpace(er300, RandomUniformKernel(), SG(er300))
        assert space.count == er300.num_edges
        it = space.views(0, space.count)
        assert iter(it) is it  # a generator, not a materialized list
        first = next(it)
        assert first.id == 0

    def test_chunk_ranges_partition_all_scopes(self, plc300):
        from repro.algorithms.triangles import count_triangles
        from repro.core.engine import _ElementSpace

        class TriangleProbe(TriangleKernel):
            pass

        sg = SG(plc300)
        space = _ElementSpace(plc300, TriangleProbe(), sg)
        assert space.count == count_triangles(plc300)
        mid = space.count // 2
        halves = list(space.views(0, mid)) + list(space.views(mid, space.count))
        assert len(halves) == space.count
        assert all(len(t.edge_ids) == 3 for t in halves)

    def test_early_stop_constructs_no_further_views(self, er300):
        from repro.core.engine import _ElementSpace

        space = _ElementSpace(er300, CountingVertexKernel(), SG(er300))
        it = space.views(0, space.count)
        seen = [next(it) for _ in range(5)]
        assert [v.id for v in seen] == [0, 1, 2, 3, 4]
        it.close()  # abandoning the sweep allocates nothing more


class TestRuntime:
    def test_single_round_for_nonconverging_schemes(self, er300):
        runtime = SlimGraphRuntime(RandomUniformKernel(), params={"p": 0.5})
        result = runtime.run(er300, seed=0)
        assert result.rounds == 1
        assert result.graph.num_edges < er300.num_edges

    def test_subgraph_requires_mapping_fn(self, er300):
        from repro.compress.spanner import DeriveSpannerKernel

        runtime = SlimGraphRuntime(DeriveSpannerKernel())
        with pytest.raises(RuntimeError, match="mapping_fn"):
            runtime.run(er300)

    def test_spanner_through_runtime(self, plc300):
        scheme = Spanner(4)
        runtime = SlimGraphRuntime(
            scheme.make_kernel(), mapping_fn=scheme.mapping_fn(), params={}
        )
        result = runtime.run(plc300, seed=2)
        assert result.graph.num_edges < plc300.num_edges
        from repro.algorithms.components import connected_components

        assert (
            connected_components(result.graph).num_components
            == connected_components(plc300).num_components
        )

    def test_max_rounds_bound(self, er300):
        class NeverConverges(VertexKernel):
            def __call__(self, v, sg):
                sg.update_convergence(False)

        runtime = SlimGraphRuntime(NeverConverges(), max_rounds=3)
        result = runtime.run(er300)
        assert result.rounds == 3


class TestPipeline:
    def test_pipeline_result_fields(self, er300):
        from repro.algorithms.components import connected_components

        pipe = Pipeline(RandomUniformSampling(0.5), lambda g: connected_components(g).num_components)
        res = pipe.run(er300, seed=1)
        assert 0.0 < res.compression_ratio < 1.0
        assert res.edge_reduction == pytest.approx(1.0 - res.compression_ratio)
        assert res.original_output == connected_components(er300).num_components
        assert res.compression_seconds > 0

    def test_pipeline_with_plain_callable(self, er300):
        pipe = Pipeline(lambda g: g, lambda g: g.num_edges)
        res = pipe.run(er300)
        assert res.compression_ratio == 1.0
        assert res.original_output == res.compressed_output

    def test_repeats_validation(self, er300):
        with pytest.raises(ValueError):
            Pipeline(lambda g: g, lambda g: 0, repeats=0)
