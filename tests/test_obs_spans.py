"""Tests for repro.obs.spans: nesting, failure paths, concurrency, export."""

import json
import threading

import pytest

from repro.obs.spans import (
    Span,
    Tracer,
    current_span_id,
    disable_tracing,
    enable_tracing,
    span,
    tracer,
    tracing_enabled,
    tree_from_trace,
    validate_trace,
)


@pytest.fixture()
def clean_tracer():
    """The global tracer, enabled and empty; restored afterwards."""
    t = tracer()
    t.clear()
    enable_tracing()
    yield t
    disable_tracing()
    t.clear()


class TestSpanBasics:
    def test_nesting_parent_child(self, clean_tracer):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert current_span_id() == inner.span_id
            assert current_span_id() == outer.span_id
        assert current_span_id() is None
        spans = clean_tracer.export()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None

    def test_attrs_and_counters(self, clean_tracer):
        with span("work", scheme="spanner(k=4)") as sp:
            sp.set(cells=8)
            sp.inc("hits")
            sp.inc("hits", 2)
        [record] = clean_tracer.export()
        assert record["attrs"] == {"scheme": "spanner(k=4)", "cells": 8}
        assert record["counters"] == {"hits": 3}
        assert record["status"] == "ok"
        assert record["duration"] >= 0.0

    def test_name_attr_does_not_collide(self, clean_tracer):
        # The span's own name is positional-only, so "name" is usable as
        # an attribute key (run_sweep tags its span with name=<sweep>).
        with span("sweep", name="smoke"):
            pass
        [record] = clean_tracer.export()
        assert record["name"] == "sweep"
        assert record["attrs"] == {"name": "smoke"}

    def test_disabled_is_noop(self):
        t = tracer()
        t.clear()
        disable_tracing()
        assert not tracing_enabled()
        with span("ignored") as sp:
            # The null span accepts the full Span surface.
            assert sp.set(x=1) is sp
            assert sp.inc("n") is sp
            assert sp.span_id is None
        assert len(t) == 0

    def test_unique_ids_carry_pid(self, clean_tracer):
        import os

        with span("a"):
            pass
        with span("b"):
            pass
        ids = [s["span_id"] for s in clean_tracer.export()]
        assert len(set(ids)) == 2
        prefix = f"{os.getpid():x}."
        assert all(i.startswith(prefix) for i in ids)


class TestSpanFailure:
    def test_exception_marks_error_but_closes(self, clean_tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with span("doomed"):
                raise RuntimeError("boom")
        [record] = clean_tracer.export()
        assert record["status"] == "error"
        assert record["error"] == "RuntimeError: boom"
        assert record["duration"] >= 0.0
        # The stack unwound: new spans are roots, not children of the dead one.
        assert current_span_id() is None

    def test_parent_survives_child_failure(self, clean_tracer):
        with span("parent") as parent:
            with pytest.raises(ValueError):
                with span("child"):
                    raise ValueError("inner")
            assert current_span_id() == parent.span_id
        by_name = {s["name"]: s for s in clean_tracer.export()}
        assert by_name["parent"]["status"] == "ok"
        assert by_name["child"]["status"] == "error"
        assert by_name["child"]["parent_id"] == by_name["parent"]["span_id"]

    def test_close_is_idempotent_surface(self):
        sp = Span("direct")
        record = sp.close()
        assert record["status"] == "ok"
        assert record["name"] == "direct"


class TestSpanConcurrency:
    def test_threads_never_interleave_parents(self, clean_tracer):
        """N threads nest concurrently; every child's parent is its own
        thread's outer span, never another thread's."""
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def work(k: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                with span("outer", thread_no=k):
                    with span("inner", thread_no=k, i=i):
                        pass

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        spans = clean_tracer.export()
        assert len(spans) == n_threads * per_thread * 2
        outers = {
            s["span_id"]: s["attrs"]["thread_no"]
            for s in spans
            if s["name"] == "outer"
        }
        for s in spans:
            if s["name"] != "inner":
                continue
            assert s["parent_id"] in outers
            assert outers[s["parent_id"]] == s["attrs"]["thread_no"]

    def test_dedicated_tracer_isolated_from_global(self):
        own = Tracer(enabled=True)
        with own.span("private"):
            pass
        assert len(own) == 1
        assert len(tracer()) == 0


class TestStitching:
    def test_adopt_reparents_foreign_roots(self, clean_tracer):
        worker = Tracer(enabled=True)
        with worker.span("worker.cell"):
            with worker.span("compress"):
                pass
        shipped = worker.drain()
        assert len(worker) == 0

        with span("grid") as grid:
            adopted = clean_tracer.adopt(shipped, parent_id=grid.span_id)
        assert adopted == 2
        by_name = {s["name"]: s for s in clean_tracer.export()}
        # The worker's root hangs off the grid span; internal links survive.
        assert by_name["worker.cell"]["parent_id"] == by_name["grid"]["span_id"]
        assert (
            by_name["compress"]["parent_id"] == by_name["worker.cell"]["span_id"]
        )

    def test_adopt_without_parent_makes_roots(self, clean_tracer):
        worker = Tracer(enabled=True)
        with worker.span("solo"):
            pass
        clean_tracer.adopt(worker.drain())
        [record] = clean_tracer.export()
        assert record["parent_id"] is None

    def test_drain_then_adopt_preserves_order(self, clean_tracer):
        worker = Tracer(enabled=True)
        for i in range(5):
            with worker.span(f"s{i}"):
                pass
        clean_tracer.adopt(worker.drain())
        assert [s["name"] for s in clean_tracer.export()] == [
            f"s{i}" for i in range(5)
        ]


class TestExport:
    def test_chrome_trace_is_schema_valid(self, clean_tracer, tmp_path):
        with span("outer", scheme="uniform(p=0.5)"):
            with span("inner"):
                pass
        with pytest.raises(KeyError):
            with span("failed"):
                raise KeyError("x")
        path = clean_tracer.write_chrome_trace(
            tmp_path / "trace.json", metadata={"sweep": "test"}
        )
        trace = json.loads(path.read_text())
        assert validate_trace(trace) == []
        assert trace["metadata"]["sweep"] == "test"
        assert trace["metadata"]["schema_version"] == 1
        statuses = {e["args"]["status"] for e in trace["traceEvents"]}
        assert statuses == {"ok", "error"}
        # Events are wall-clock sorted and microsecond scaled.
        stamps = [e["ts"] for e in trace["traceEvents"]]
        assert stamps == sorted(stamps)

    def test_validator_catches_broken_traces(self, clean_tracer):
        with span("a"):
            pass
        trace = clean_tracer.chrome_trace()
        assert validate_trace(trace) == []

        broken = json.loads(json.dumps(trace))
        broken["traceEvents"][0]["args"]["parent_id"] = "no.such"
        assert any("resolves to no span" in p for p in validate_trace(broken))

        broken = json.loads(json.dumps(trace))
        broken["traceEvents"][0]["ph"] = "B"
        assert any("!= 'X'" in p for p in validate_trace(broken))

        broken = json.loads(json.dumps(trace))
        del broken["metadata"]["main_pid"]
        assert any("main_pid" in p for p in validate_trace(broken))

        assert validate_trace([]) != []
        assert any(
            "non-empty" in p
            for p in validate_trace({"traceEvents": [], "metadata": {}})
        )

    def test_format_tree_and_round_trip(self, clean_tracer):
        with span("sweep", sweep="smoke"):
            with span("grid"):
                pass
        rendered = clean_tracer.format_tree()
        assert rendered.splitlines()[0].startswith("sweep")
        assert rendered.splitlines()[1].startswith("  grid")
        # Re-rendering from the exported trace gives the same structure.
        again = tree_from_trace(clean_tracer.chrome_trace())
        assert [ln.split()[0] for ln in again.splitlines()] == [
            ln.split()[0] for ln in rendered.splitlines()
        ]

    def test_empty_tree(self):
        t = Tracer()
        assert t.format_tree() == "(no spans recorded)"

    def test_error_marker_in_tree(self, clean_tracer):
        with pytest.raises(RuntimeError):
            with span("bad"):
                raise RuntimeError("x")
        assert "!ERR" in clean_tracer.format_tree()
