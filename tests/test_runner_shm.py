"""Shared-memory graph publication tests: zero-copy attach fidelity,
segment lifecycle (no leaks, even on failure or chaos), load-mode
equality with the in-memory grid, and the worker-memory win."""

import numpy as np
import pytest

from repro.analytics.session import Session
from repro.graphs import generators as gen
from repro.graphs.snapshot import SnapshotError
from repro.obs.resources import private_bytes
from repro.runner import shm as shm_mod
from repro.runner.fingerprint import graph_fingerprint
from repro.runner.shm import SharedGraph, _attach_untracked, attach_graph, detach_all

SCHEMES = ["uniform(p=0.5)", "spanner(k=8)"]
ALGS = ["pr", "cc"]


def _comparable(table):
    return sorted(
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in table
    )


def _segment_gone(name: str) -> bool:
    try:
        seg = _attach_untracked(name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


@pytest.fixture(autouse=True)
def _detach():
    yield
    detach_all()


class TestSharedGraph:
    def test_attach_is_value_identical(self, plc300):
        with SharedGraph(plc300, fingerprint=graph_fingerprint(plc300)) as shared:
            attached = attach_graph(shared.manifest)
            assert graph_fingerprint(attached) == graph_fingerprint(plc300)
            np.testing.assert_array_equal(attached.edge_src, plc300.edge_src)
            np.testing.assert_array_equal(attached.indptr, plc300.indptr)
            attached.validate()
            del attached
            detach_all()

    def test_weighted_directed_round_trip(self, tmp_path):
        from repro.graphs.weights import with_uniform_weights

        g = with_uniform_weights(
            gen.rmat(6, 4, seed=3, directed=True), 1.0, 5.0, seed=1
        )
        with SharedGraph(g) as shared:
            attached = attach_graph(shared.manifest)
            assert attached.directed
            np.testing.assert_array_equal(attached.edge_weights, g.edge_weights)
            del attached
            detach_all()

    def test_empty_graph(self):
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(3, [], [])
        with SharedGraph(g) as shared:
            attached = attach_graph(shared.manifest)
            assert attached.n == 3 and attached.num_edges == 0
            del attached
            detach_all()

    def test_attached_arrays_are_read_only(self, plc300):
        with SharedGraph(plc300) as shared:
            attached = attach_graph(shared.manifest)
            with pytest.raises(ValueError):
                attached.edge_src[0] = 99
            with pytest.raises(ValueError):
                attached.indices[0] = 99
            del attached
            detach_all()

    def test_close_unlinks_and_is_idempotent(self, plc300):
        shared = SharedGraph(plc300)
        name = shared.name
        shared.close()
        assert shared.name is None
        assert _segment_gone(name)
        shared.close()  # second close is a no-op, not an error

    def test_failed_construction_leaves_no_segment(self, plc300, monkeypatch):
        # Record every created segment, then make the copy-in blow up
        # after create=True succeeded: the regression this guards is a
        # leaked segment no process can ever unlink.
        created: list[str] = []
        real = shm_mod.shared_memory.SharedMemory

        class Recording(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        class ExplodingNumpy:
            def __getattr__(self, name):
                return getattr(np, name)

            @staticmethod
            def ndarray(*args, **kwargs):
                raise RuntimeError("simulated copy-in failure")

        monkeypatch.setattr(shm_mod.shared_memory, "SharedMemory", Recording)
        monkeypatch.setattr(shm_mod, "np", ExplodingNumpy())
        with pytest.raises(RuntimeError, match="copy-in failure"):
            SharedGraph(plc300)
        monkeypatch.undo()
        assert created, "test never created a segment"
        for name in created:
            assert _segment_gone(name), f"leaked shared-memory segment {name}"

    def test_manifest_version_checked(self, plc300):
        with SharedGraph(plc300) as shared:
            bad = dict(shared.manifest, version=999)
            with pytest.raises(SnapshotError, match="manifest"):
                attach_graph(bad)

    def test_manifest_bounds_checked(self, plc300):
        with SharedGraph(plc300) as shared:
            bad = dict(shared.manifest)
            bad["arrays"] = {
                name: dict(meta) for name, meta in bad["arrays"].items()
            }
            bad["arrays"]["indices"]["offset"] = bad["nbytes"]
            with pytest.raises(SnapshotError, match="indices"):
                attach_graph(bad)
            detach_all()

    def test_manifest_cross_field_damage_detected(self, plc300):
        with SharedGraph(plc300) as shared:
            bad = dict(shared.manifest)
            bad["arrays"] = {
                name: dict(meta) for name, meta in bad["arrays"].items()
            }
            bad["arrays"]["indptr"]["shape"] = [3]  # wrong for n vertices
            with pytest.raises(SnapshotError, match="indptr"):
                attach_graph(bad)
            detach_all()


class TestGridLoadModes:
    @pytest.mark.parametrize("mode", ["shm", "npz", "mmap", "auto"])
    def test_pooled_grid_equals_in_memory(self, plc300, mode):
        expected = _comparable(Session(plc300, seed=1).grid(SCHEMES, ALGS))
        session = Session(plc300, seed=1, jobs=2, graph_load=mode)
        got = _comparable(session.grid(SCHEMES, ALGS))
        assert got == expected
        perf = session.last_grid_perf
        resolved = {"auto": "shm"}.get(mode, mode)
        assert perf["graph_load"] == resolved
        assert perf["workers"], "pooled grid reported no worker stats"
        for worker in perf["workers"].values():
            assert worker["load_mode"] == resolved
            assert "load_seconds" in worker and "private_bytes" in worker

    def test_segment_unlinked_after_grid(self, plc300):
        session = Session(plc300, seed=1, jobs=2, graph_load="shm")
        session.grid(SCHEMES, ["pr"], ["kl"])
        name = session.last_grid_perf["shm_segment"]
        assert _segment_gone(name), f"grid leaked shared-memory segment {name}"

    def test_auto_falls_back_to_npz(self, plc300, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(shm_mod, "SharedGraph", boom)
        expected = _comparable(Session(plc300, seed=1).grid(SCHEMES, ["pr"], ["kl"]))
        session = Session(plc300, seed=1, jobs=2, graph_load="auto")
        got = _comparable(session.grid(SCHEMES, ["pr"], ["kl"]))
        assert got == expected
        perf = session.last_grid_perf
        assert perf["graph_load"] == "npz"
        assert "no space left" in perf["graph_load_fallback"]

    def test_explicit_shm_mode_raises_instead_of_falling_back(
        self, plc300, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(shm_mod, "SharedGraph", boom)
        session = Session(plc300, seed=1, jobs=2, graph_load="shm")
        with pytest.raises(OSError, match="no space left"):
            session.grid(SCHEMES, ["pr"], ["kl"])

    def test_invalid_mode_rejected(self, plc300):
        with pytest.raises(ValueError, match="graph_load"):
            Session(plc300, graph_load="carrier-pigeon")


@pytest.mark.skipif(
    private_bytes() is None,
    reason="USS (smaps_rollup) unavailable on this platform",
)
class TestWorkerMemory:
    def test_shm_workers_share_the_graph_pages(self):
        # Big enough that one CSR copy dominates USS measurement noise:
        # ~400k edges is ~20MB of int64 CSR arrays.
        g = gen.erdos_renyi(40_000, m=400_000, seed=5)
        graph_bytes = sum(
            arr.nbytes
            for arr in (g.edge_src, g.edge_dst, g.indptr, g.indices, g.arc_edge_ids)
        )
        uss = {}
        for mode in ("npz", "shm"):
            session = Session(g, seed=0, jobs=2, graph_load=mode)
            session.grid(["uniform(p=0.5)", "uniform(p=0.9)"], ["cc"])
            workers = session.last_grid_perf["workers"].values()
            vals = [w["private_bytes"] for w in workers if w["private_bytes"]]
            assert vals, f"{mode}: no USS samples"
            uss[mode] = max(vals)
        # An npz worker holds a private CSR copy; a shm worker maps shared
        # pages instead.  Demand at least 40% of one copy back — far above
        # USS jitter, far below the full copy so compression-allocation
        # noise cannot flake the test.
        saved = uss["npz"] - uss["shm"]
        assert saved >= 0.4 * graph_bytes, (
            f"shm worker USS {uss['shm']/1e6:.1f}MB vs npz "
            f"{uss['npz']/1e6:.1f}MB — saved {saved/1e6:.1f}MB, expected "
            f">= {0.4 * graph_bytes/1e6:.1f}MB (graph is {graph_bytes/1e6:.1f}MB)"
        )


class TestChaosWithSharedMemory:
    def test_killed_worker_recovers_value_identical(self, plc300, tmp_path):
        from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan

        expected = _comparable(Session(plc300, seed=1).grid(SCHEMES, ALGS))
        install_plan(
            FaultPlan(
                faults=(FaultSpec("runner.worker_cell", mode="kill", times=1),),
                token_dir=str(tmp_path / "tok"),
            )
        )
        try:
            session = Session(
                plc300,
                seed=1,
                store=tmp_path / "store",
                jobs=2,
                graph_load="shm",
                retry={"max_attempts": 4, "backoff_base": 0.01, "jitter": 0.0},
            )
            table = session.grid(SCHEMES, ALGS)
        finally:
            clear_plan()
        perf = session.last_grid_perf
        assert _comparable(table) == expected
        assert perf["graph_load"] == "shm"
        assert perf["pool_rebuilds"] >= 1
        assert perf["failed_cells"] == []
        # The rebuilt pool re-attached the same manifest; the parent still
        # unlinked exactly once on the way out.
        assert _segment_gone(perf["shm_segment"])
