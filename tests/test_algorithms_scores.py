"""PageRank, betweenness, triangles — verified against networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.betweenness import betweenness_centrality
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import (
    approx_count_doulion,
    approx_count_wedge_sampling,
    count_triangles,
    edge_ids_of_pairs,
    edge_triangle_counts,
    list_triangles,
    triangles_per_vertex,
)
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from tests.conftest import to_networkx


class TestPageRank:
    def test_vs_networkx(self, er300):
        ours = pagerank(er300).ranks
        theirs = nx.pagerank(to_networkx(er300), alpha=0.85, tol=1e-12)
        assert np.allclose(ours, [theirs[v] for v in range(er300.n)], atol=1e-6)

    def test_sums_to_one(self, plc300):
        r = pagerank(plc300)
        assert r.converged
        assert r.ranks.sum() == pytest.approx(1.0)

    def test_dangling_vertices(self):
        g = CSRGraph.from_edges(4, [0, 1], [1, 2], directed=True)  # 3 isolated
        r = pagerank(g)
        assert r.ranks.sum() == pytest.approx(1.0)
        assert np.all(r.ranks > 0)

    def test_star_ranks_center_highest(self, star20):
        r = pagerank(star20)
        assert r.top(1)[0] == 0

    def test_weighted(self, er300):
        w = np.linspace(1, 5, er300.num_edges)
        wg = er300.with_weights(w)
        r1 = pagerank(wg, weighted=True).ranks
        r2 = pagerank(wg, weighted=False).ranks
        assert not np.allclose(r1, r2)

    def test_damping_validation(self, tiny):
        with pytest.raises(ValueError):
            pagerank(tiny, damping=1.5)

    def test_empty_graph(self):
        assert pagerank(CSRGraph.empty(0)).ranks.shape == (0,)


class TestTriangles:
    def test_count_vs_networkx(self, plc300):
        truth = sum(nx.triangles(to_networkx(plc300)).values()) // 3
        assert count_triangles(plc300) == truth

    def test_listing_count_agrees(self, plc300):
        assert list_triangles(plc300).count == count_triangles(plc300)

    def test_listing_unique_and_valid(self, plc300):
        tl = list_triangles(plc300)
        seen = set()
        for (u, v, w), (e1, e2, e3) in zip(tl.vertices, tl.edge_ids):
            key = frozenset((int(u), int(v), int(w)))
            assert key not in seen
            seen.add(key)
            assert plc300.has_edge(int(u), int(v))
            assert plc300.has_edge(int(u), int(w))
            assert plc300.has_edge(int(v), int(w))
            assert plc300.edge_id(int(u), int(v)) == e1
            assert plc300.edge_id(int(u), int(w)) == e2
            assert plc300.edge_id(int(v), int(w)) == e3

    def test_per_vertex_vs_networkx(self, plc300):
        ours = triangles_per_vertex(plc300)
        theirs = nx.triangles(to_networkx(plc300))
        assert all(ours[v] == theirs[v] for v in range(plc300.n))

    def test_edge_counts_sum(self, plc300):
        # Each triangle contributes to exactly 3 edges.
        assert edge_triangle_counts(plc300).sum() == 3 * count_triangles(plc300)

    def test_complete_graph_count(self):
        g = gen.complete_graph(8)
        assert count_triangles(g) == 8 * 7 * 6 // 6

    def test_triangle_free(self, grid10):
        assert count_triangles(grid10) == 0
        assert list_triangles(grid10).count == 0

    def test_doulion_unbiased(self, plc300):
        t = count_triangles(plc300)
        estimates = [approx_count_doulion(plc300, 0.7, seed=s) for s in range(10)]
        assert np.mean(estimates) == pytest.approx(t, rel=0.25)

    def test_doulion_edge_cases(self, plc300):
        assert approx_count_doulion(plc300, 0.0) == 0.0
        assert approx_count_doulion(plc300, 1.0, seed=0) == count_triangles(plc300)

    def test_wedge_sampling(self, plc300):
        t = count_triangles(plc300)
        est = approx_count_wedge_sampling(plc300, samples=4000, seed=1)
        assert est == pytest.approx(t, rel=0.3)

    def test_edge_ids_of_pairs_errors(self, tiny):
        with pytest.raises(KeyError):
            edge_ids_of_pairs(tiny, np.array([0]), np.array([4]))

    def test_directed_rejected(self):
        g = CSRGraph.from_edges(3, [0], [1], directed=True)
        with pytest.raises(ValueError):
            count_triangles(g)


class TestBetweenness:
    def test_vs_networkx(self, er300):
        ours = betweenness_centrality(er300)
        theirs = nx.betweenness_centrality(to_networkx(er300))
        assert np.allclose(ours, [theirs[v] for v in range(er300.n)], atol=1e-9)

    def test_star_center(self, star20):
        bc = betweenness_centrality(star20, normalized=True)
        assert bc[0] == pytest.approx(1.0)
        assert np.allclose(bc[1:], 0.0)

    def test_path_interior(self):
        g = gen.path_graph(5)
        bc = betweenness_centrality(g, normalized=False)
        # Middle vertex lies on 2*3=... pairs: (0,3),(0,4),(1,3),(1,4),(0,2)x? exact: vertex 2 on pairs {0,1}x{3,4} = 4
        assert bc[2] == pytest.approx(4.0)

    def test_sampled_close_to_exact(self, er300):
        exact = betweenness_centrality(er300)
        approx = betweenness_centrality(er300, num_sources=150, seed=0)
        # Top-ranked vertex should agree on a dense-enough sample.
        assert np.corrcoef(exact, approx)[0, 1] > 0.9
