"""Tests for the fluent evaluation session: baseline caching, scoring,
sweeps, and the deprecated evaluate_scheme/sweep shims."""

import pytest

from repro.algorithms.pagerank import pagerank
from repro.analytics import Session
from repro.analytics.evaluation import AlgorithmSpec, evaluate_scheme
from repro.analytics.tradeoff import sweep
from repro.compress.uniform import RandomUniformSampling


class TestBaselineCache:
    def test_baseline_reused_across_schemes(self, plc300):
        session = Session(plc300, seed=0)
        session.evaluate("uniform(p=0.5)")
        first = session.baseline_computations
        assert first > 0
        session.evaluate("spanner(k=8)")
        session.evaluate("EO-0.8-1-TR")
        # Scoring two more schemes ran zero extra original-graph work.
        assert session.baseline_computations == first

    def test_counting_via_instrumented_algorithm(self, plc300):
        calls = {"n": 0}

        def counting(g):
            calls["n"] += 1
            return g.num_edges

        specs = [AlgorithmSpec("edges", counting, "scalar")]
        session = Session(plc300, seed=0)
        session.evaluate("uniform(p=0.5)", specs)
        session.evaluate("uniform(p=0.9)", specs)
        # 1 baseline + 2 compressed runs; a session-less pair would do 4.
        assert calls["n"] == 3

    def test_records_match_shimless_path(self, plc300):
        session = Session(plc300, seed=0)
        records, compressed = session.evaluate(RandomUniformSampling(0.5), seed=0)
        names = {r.algorithm for r in records}
        assert names == {"bfs", "cc", "pr", "tc", "tc_per_vertex"}
        assert compressed.num_edges < plc300.num_edges


class TestFluentApi:
    def test_compress_run_score(self, plc300):
        scores = (
            Session(plc300, seed=0)
            .compress("spanner(k=8)")
            .run(pagerank)
            .score(["kl"])
        )
        assert scores["kl_divergence"] >= 0
        assert scores["kl"] == scores["kl_divergence"]

    def test_multiple_metrics_and_algorithms(self, plc300):
        session = Session(plc300, seed=0)
        run = session.compress("uniform(p=0.5)").run(pagerank).run("cc")
        scores = run.score()
        assert set(scores) == {"pagerank", "cc"}
        assert "kl_divergence" in scores["pagerank"]
        assert "relative_change" in scores["cc"]

    def test_named_battery_algorithms(self, plc300):
        scores = (
            Session(plc300, seed=0)
            .compress("uniform(p=0.5)")
            .run("pr", "tc")
            .score()
        )
        assert set(scores) == {"pr", "tc"}

    def test_pipeline_spec_compresses(self, plc300):
        run = Session(plc300, seed=0).compress("uniform(p=0.9) | spanner(k=4)")
        assert [st.scheme for st in run.lineage] == ["uniform", "spanner"]
        assert run.graph.num_edges < plc300.num_edges

    def test_score_without_run_rejected(self, plc300):
        with pytest.raises(ValueError):
            Session(plc300).compress("uniform(p=0.5)").score(["kl"])

    def test_unknown_metric_rejected(self, plc300):
        run = Session(plc300, seed=0).compress("uniform(p=0.5)").run(pagerank)
        with pytest.raises(ValueError):
            run.score(["wasserstein"])

    def test_bfs_run_only_scores_critical_edges(self, plc300):
        run = Session(plc300, seed=0).compress("uniform(p=0.5)").run("bfs")
        scores = run.score(["critical_edges"])
        assert 0 <= scores["critical_edge_preservation"] <= 1.5
        with pytest.raises(ValueError, match="critical_edges"):
            run.score(["kl"])

    def test_outputs_accessor_reuses_baseline(self, plc300):
        run = Session(plc300, seed=0).compress("uniform(p=0.5)").run(pagerank)
        out0, out1 = run.outputs("pagerank")
        assert len(out0.ranks) == plc300.n
        assert len(out1.ranks) == run.graph.n
        with pytest.raises(ValueError):
            run.outputs("never_ran")

    def test_kernel_backend_selected_in_session(self, plc300):
        session = Session(plc300, seed=0, backend="chunked", num_chunks=4)
        run = session.compress("uniform(p=0.5)", via="kernels")
        assert run.graph.num_edges < plc300.num_edges
        with pytest.raises(ValueError):
            session.compress("uniform(p=0.5)", via="gpu")


class TestSessionSweep:
    def test_spec_list_sweep(self, plc300):
        session = Session(plc300, seed=0)
        rows = session.sweep(
            ["uniform(p=0.2)", "uniform(p=0.5)", "uniform(p=0.9)"],
            algorithms=[AlgorithmSpec("cc", lambda g: 1, "scalar")],
        )
        ratios = {row.parameter: row.compression_ratio for row in rows}
        assert ratios[0.2] < ratios[0.5] < ratios[0.9]
        assert all(row.scheme_spec.startswith("uniform") for row in rows)

    def test_duplicate_schemes_evaluated_once(self, plc300):
        calls = {"n": 0}

        def counting(g):
            calls["n"] += 1
            return 1

        session = Session(plc300, seed=0)
        rows = session.sweep(
            ["uniform(p=0.5)", "uniform(p=0.5)"],
            algorithms=[AlgorithmSpec("one", counting, "scalar")],
        )
        assert len(rows) == 2  # both rows reported...
        assert calls["n"] == 2  # ...but 1 baseline + 1 compressed execution

    def test_duplicate_schemes_keep_their_labels(self, plc300):
        session = Session(plc300, seed=0)
        rows = session.sweep(
            ["uniform(p=0.5)", "uniform(0.5)"],
            parameters=["a", "b"],
            algorithms=[AlgorithmSpec("one", lambda g: 1, "scalar")],
        )
        assert [row.parameter for row in rows] == ["a", "b"]

    def test_repeats_validation(self, plc300):
        with pytest.raises(ValueError):
            Session(plc300).sweep(["uniform(p=0.5)"], repeats=0)


class TestDeprecatedShims:
    def test_evaluate_scheme_warns_and_works(self, plc300):
        with pytest.warns(DeprecationWarning):
            records, compressed = evaluate_scheme(
                plc300, RandomUniformSampling(0.5), seed=0
            )
        assert {r.algorithm for r in records} == {"bfs", "cc", "pr", "tc", "tc_per_vertex"}
        assert compressed.num_edges < plc300.num_edges

    def test_sweep_warns_and_works(self, plc300):
        with pytest.warns(DeprecationWarning):
            rows = sweep(
                plc300,
                lambda p: RandomUniformSampling(p),
                [0.2, 0.9],
                algorithms=[AlgorithmSpec("cc", lambda g: 1, "scalar")],
                seed=0,
            )
        assert len(rows) == 2
        assert {row.parameter for row in rows} == {0.2, 0.9}
