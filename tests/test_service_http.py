"""End-to-end tests for the HTTP front-end: submit/poll/result round-trips,
coalescing over the wire, warm-store resubmission, metrics, dashboard."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.graphs import datasets
from repro.service.http import start_in_thread
from repro.service.queue import DONE, JobQueue

GRAPH = "s-flx"
JOB_BODY = {
    "graph": GRAPH,
    "schemes": ["uniform(p=0.5)", "spanner(k=4)"],
    "algorithms": ["pr", "cc"],
    "seeds": [0],
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    queue = JobQueue(tmp_path_factory.mktemp("svc") / "store", workers=2)
    server, thread = start_in_thread(queue)
    base = "http://{}:{}".format(*server.server_address[:2])
    yield base, queue
    server.shutdown()
    thread.join(30)
    queue.close()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, resp.headers.get_content_type(), resp.read()


def _get_json(base, path):
    status, _, body = _get(base, path)
    return status, json.loads(body)


def _post(base, payload):
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + "/jobs", data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _await(base, job_id, timeout=120.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, summary = _get_json(base, f"/jobs/{job_id}")
        assert status == 200
        if summary["state"] in ("done", "failed"):
            return summary
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestEndpoints:
    def test_healthz(self, service):
        base, _ = service
        assert _get_json(base, "/healthz") == (200, {"status": "ok"})

    def test_unknown_routes_404(self, service):
        base, _ = service
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/no/such/route")
        assert err.value.code == 404
        assert "no route" in json.loads(err.value.read())["error"]

    def test_unknown_job_404(self, service):
        base, _ = service
        for path in ("/jobs/nope", "/jobs/nope/result"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, path)
            assert err.value.code == 404

    def test_bad_submissions_400(self, service):
        base, _ = service
        status, payload = _post(base, b"{not json")
        assert status == 400 and "invalid JSON" in payload["error"]
        status, payload = _post(base, {"graph": GRAPH, "schemes": ["bogus(p=1)"]})
        assert status == 400
        status, payload = _post(base, {"schemes": ["uniform(p=0.5)"]})
        assert status == 400 and "graph" in payload["error"]

    def test_dashboard_serves_html(self, service):
        base, _ = service
        status, ctype, body = _get(base, "/")
        assert status == 200 and ctype == "text/html"
        page = body.decode()
        assert "<!doctype html" in page.lower()
        assert "queue depth" in page.lower()


class TestJobFlow:
    def test_submit_poll_result_matches_in_memory_session(self, service):
        """The acceptance criterion: the table served over HTTP is
        value-identical to an in-memory Session.grid on the same graph."""
        from repro.analytics.grid import SweepTable
        from repro.analytics.session import Session

        base, _ = service
        status, summary = _post(base, JOB_BODY)
        assert status == 202 and summary["state"] in ("queued", "running", "done")
        final = _await(base, summary["id"])
        assert final["state"] == DONE

        status, payload = _get_json(base, f"/jobs/{summary['id']}/result")
        assert status == 200
        served = SweepTable.from_dict(payload["cells"])

        session = Session(datasets.load(GRAPH, seed=0), seed=0)
        expected = session.grid(JOB_BODY["schemes"], JOB_BODY["algorithms"], seed=0)
        key = lambda c: (c.scheme, c.algorithm, c.metric, c.seed, c.value)
        assert [key(c) for c in served] == [key(c) for c in expected]
        assert all(c.graph == GRAPH for c in served)
        assert payload["perf"]["cells_scheduled"] == len(
            JOB_BODY["schemes"]
        ) * len(JOB_BODY["algorithms"])

    def test_result_csv_round_trips(self, service):
        from repro.analytics.grid import SweepTable

        base, _ = service
        _, summary = _post(base, JOB_BODY)
        _await(base, summary["id"])
        status, ctype, body = _get(base, f"/jobs/{summary['id']}/result?format=csv")
        assert status == 200 and ctype == "text/csv"
        table = SweepTable.from_csv(body.decode())
        assert len(table) == 4

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, f"/jobs/{summary['id']}/result?format=xml")
        assert err.value.code == 400

    def test_jobs_listing_includes_submissions(self, service):
        base, _ = service
        _, summary = _post(base, JOB_BODY)
        _await(base, summary["id"])
        status, listing = _get_json(base, "/jobs")
        assert status == 200
        assert summary["id"] in {entry["id"] for entry in listing}

    def test_failed_job_result_is_500_with_error(self, service):
        base, _ = service
        _, summary = _post(base, {"graph": "no-such-dataset", "schemes": ["uniform(p=0.5)"]})
        final = _await(base, summary["id"])
        assert final["state"] == "failed"
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, f"/jobs/{summary['id']}/result")
        assert err.value.code == 500
        assert json.loads(err.value.read())["job"]["state"] == "failed"


class TestDedupeOverHTTP:
    def test_concurrent_posts_coalesce_to_one_computation(self, service):
        """Two concurrent HTTP submissions of the same graph+grid run one
        computation and both callers read the same finished table."""
        base, queue = service
        body = dict(JOB_BODY, seeds=[7])
        writes_before = queue.store.stats.writes
        n = 4
        barrier = threading.Barrier(n)
        results = [None] * n

        def post(i):
            barrier.wait()
            results[i] = _post(base, body)

        threads = [threading.Thread(target=post, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = {summary["id"] for status, summary in results}
        assert all(status == 202 for status, _ in results)
        tables = set()
        for job_id in ids:
            assert _await(base, job_id)["state"] == DONE
            _, payload = _get_json(base, f"/jobs/{job_id}/result")
            tables.add(json.dumps(payload["cells"], sort_keys=True))
        # Every caller sees one identical table, and the store gained
        # exactly one set of cells no matter how the posts interleaved.
        assert len(tables) == 1
        assert queue.store.stats.writes == writes_before + 4

    def test_warm_resubmit_recomputes_nothing(self, service):
        """A resubmission after completion replays from the artifact store:
        store hits grow, misses (computations) do not."""
        base, queue = service
        body = dict(JOB_BODY, seeds=[11])
        _, first = _post(base, body)
        assert _await(base, first["id"])["state"] == DONE

        before = queue.store.stats.snapshot()
        _, again = _post(base, body)
        final = _await(base, again["id"])
        assert final["state"] == DONE and final["id"] != first["id"]
        assert final["warm"] is True

        after = queue.store.stats.snapshot()
        assert after["misses"] == before["misses"]
        assert after["writes"] == before["writes"]
        assert after["hits"] == before["hits"] + 4

    def test_metrics_reports_queue_and_store(self, service):
        base, queue = service
        status, metrics = _get_json(base, "/metrics")
        assert status == 200
        assert metrics["workers"] == 2
        assert metrics["jobs_total"] == queue.stats()["jobs_total"]
        assert set(metrics["states"]) == {"queued", "running", "done", "failed"}
        assert metrics["store"]["hits"] >= 4
        assert metrics["latency"]["cold"]["count"] >= 1
        assert metrics["latency"]["warm"]["count"] >= 1


def _post_raw(base, data, headers=None):
    """POST raw bytes; (status, parsed body, response headers)."""
    request = urllib.request.Request(
        base + "/jobs", data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), err.headers


class TestBackpressure:
    def test_closed_queue_is_503_with_retry_after(self):
        from repro.service.http import start_in_thread as _start

        queue = JobQueue(workers=1, graph_loader=lambda ref: None)
        server, thread = _start(queue)
        base = "http://{}:{}".format(*server.server_address[:2])
        queue.close()
        try:
            status, payload, headers = _post_raw(
                base, json.dumps(JOB_BODY).encode()
            )
            assert status == 503
            assert headers["Retry-After"] is not None
            assert int(headers["Retry-After"]) > 0
            assert "closed" in payload["error"]
        finally:
            server.shutdown()
            thread.join(30)

    def test_saturated_queue_is_503_with_retry_after(self):
        import threading as _threading

        from repro.service.http import start_in_thread as _start

        release = _threading.Event()

        def stalled_executor(spec, *, store=None, jobs=None, graph_loader=None):
            release.wait(30)
            from repro.analytics.grid import SweepTable
            from repro.service.jobs import JobResult

            return JobResult(spec=spec, table=SweepTable([]), perf={})

        queue = JobQueue(workers=1, executor=stalled_executor, max_queued=1)
        server, thread = _start(queue)
        base = "http://{}:{}".format(*server.server_address[:2])
        try:
            body = dict(JOB_BODY)
            _post_raw(base, json.dumps(body).encode())  # occupies the worker
            body["seeds"] = [1]
            _post_raw(base, json.dumps(body).encode())  # fills the queue
            body["seeds"] = [2]
            status, payload, headers = _post_raw(base, json.dumps(body).encode())
            assert status == 503
            assert int(headers["Retry-After"]) > 0
            assert "saturated" in payload["error"]
        finally:
            release.set()
            server.shutdown()
            thread.join(30)
            queue.close()


class TestMalformedBodies:
    def test_missing_content_length_400(self, service):
        base, _ = service
        status, payload, _ = _post_raw(base, b"")
        assert status == 400
        assert "body" in payload["error"]

    def test_non_numeric_content_length_400(self, service):
        base, _ = service
        import http.client

        host, port = base.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "banana")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_oversized_body_400(self, service):
        base, _ = service
        blob = b'{"graph": "' + b"x" * (1 << 20) + b'", "schemes": ["u"]}'
        status, payload, _ = _post_raw(base, blob)
        assert status == 400

    def test_invalid_utf8_400(self, service):
        base, _ = service
        status, payload, _ = _post_raw(base, b'{"graph": "\xff\xfe"}')
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_json_non_object_400(self, service):
        base, _ = service
        status, payload, _ = _post_raw(base, b'["not", "an", "object"]')
        assert status == 400
