"""Tests for the deduplicating job queue: states, in-flight coalescing,
concurrent submission, failure retry, shutdown."""

import threading
import time

import pytest

from repro.graphs import generators as gen
from repro.runner.store import ArtifactStore
from repro.service.jobs import JobResult, JobSpec
from repro.service.queue import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    QueueClosed,
    QueueSaturated,
)


@pytest.fixture
def graph():
    return gen.powerlaw_cluster(120, 4, 0.5, seed=9)


@pytest.fixture
def loader(graph):
    return lambda ref: graph


def _spec(**overrides) -> JobSpec:
    base = dict(
        graph="g",
        schemes=["uniform(p=0.5)", "spanner(k=4)"],
        algorithms=["pr", "cc"],
        seeds=[0],
    )
    base.update(overrides)
    return JobSpec.build(**base)


class _GatedExecutor:
    """Deterministic executor stand-in: blocks until released, counts calls."""

    def __init__(self, fail=False):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self.fail = fail
        self._lock = threading.Lock()

    def __call__(self, spec, *, store=None, jobs=None, graph_loader=None):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(30), "gated executor never released"
        if self.fail:
            raise RuntimeError("synthetic job failure")
        from repro.analytics.grid import SweepTable

        return JobResult(spec=spec, table=SweepTable([]), perf={"cache_misses": 1})


class TestLifecycle:
    def test_submit_runs_to_done(self, loader, tmp_path):
        with JobQueue(tmp_path / "store", workers=1, graph_loader=loader) as q:
            record = q.submit(_spec())
            assert record.wait(60) and record.state == DONE
            assert len(record.result.table) == 4
            assert record.error is None and not record.warm
            assert record.seconds > 0

    def test_submit_accepts_transport_dicts(self, loader):
        with JobQueue(workers=1, graph_loader=loader) as q:
            record = q.submit({"graph": "g", "schemes": ["uniform(p=0.5)"]})
            assert record.wait(60) and record.state == DONE

    def test_bad_submissions_rejected_up_front(self, loader):
        with JobQueue(workers=1, graph_loader=loader) as q:
            with pytest.raises(ValueError):
                q.submit({"graph": "g", "schemes": ["no_such_scheme(p=1)"]})
            with pytest.raises(TypeError, match="JobSpec or dict"):
                q.submit("uniform(p=0.5)")
            assert q.stats()["jobs_total"] == 0

    def test_store_path_is_coerced(self, loader, tmp_path):
        with JobQueue(tmp_path / "store", workers=1, graph_loader=loader) as q:
            assert isinstance(q.store, ArtifactStore)


class TestDedupe:
    def test_inflight_submissions_coalesce(self):
        gate = _GatedExecutor()
        q = JobQueue(workers=1, executor=gate)
        try:
            first = q.submit(_spec())
            assert gate.started.wait(30)
            # Same computation in any spelling: one record, no new work.
            same = q.submit(_spec(schemes=["uniform(0.5)", "spanner(k=4)"]))
            other = q.submit(_spec(seeds=[1]))
            assert same is first and first.coalesced == 1
            assert other is not first
            gate.release.set()
            assert first.wait(30) and other.wait(30)
            assert gate.calls == 2
        finally:
            gate.release.set()
            q.close()

    def test_done_jobs_do_not_coalesce(self, loader, tmp_path):
        with JobQueue(tmp_path / "store", workers=1, graph_loader=loader) as q:
            first = q.submit(_spec())
            assert first.wait(60) and first.state == DONE
            again = q.submit(_spec())
            assert again is not first
            assert again.wait(60) and again.state == DONE
            # The resubmission replayed from the warm store: no new cells.
            assert again.warm and q.store.stats.writes == _spec().cell_groups()

    def test_concurrent_identical_submissions_compute_once(self, loader, tmp_path):
        """The satellite acceptance: N threads posting one job produce
        exactly one computation (asserted via the store write count)."""
        q = JobQueue(tmp_path / "store", workers=2, graph_loader=loader)
        try:
            n = 8
            barrier = threading.Barrier(n)
            records = [None] * n

            def post(i):
                barrier.wait()
                records[i] = q.submit(_spec())

            threads = [threading.Thread(target=post, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for r in records:
                assert r.wait(60)
            # One cell set written, ever — however the N submissions were
            # interleaved, nothing was computed twice.
            assert q.store.stats.writes == _spec().cell_groups()
            assert sum(r.coalesced for r in set(records)) == n - len(set(records))
        finally:
            q.close()

    def test_failed_job_does_not_poison_dedupe(self, graph, tmp_path):
        """A failure is retryable: the key leaves the in-flight map."""
        attempts = []

        def flaky_loader(ref):
            attempts.append(ref)
            if len(attempts) == 1:
                raise OSError("transient load failure")
            return graph

        with JobQueue(tmp_path / "store", workers=1, graph_loader=flaky_loader) as q:
            failed = q.submit(_spec())
            assert failed.wait(60) and failed.state == FAILED
            assert "transient load failure" in failed.error
            retry = q.submit(_spec())
            assert retry is not failed
            assert retry.wait(60) and retry.state == DONE
            assert q.stats()["states"][FAILED] == 1


class TestObservability:
    def test_stats_counts_states_and_latency(self, loader, tmp_path):
        with JobQueue(tmp_path / "store", workers=1, graph_loader=loader) as q:
            a = q.submit(_spec())
            b = q.submit(_spec(seeds=[1]))
            assert a.wait(60) and b.wait(60)
            warm = q.submit(_spec())
            assert warm.wait(60)
            stats = q.stats()
            assert stats["states"][DONE] == 3
            assert stats["jobs_total"] == 3
            assert stats["queue_depth"] == 0
            assert stats["latency"]["cold"]["count"] == 2
            assert stats["latency"]["warm"]["count"] == 1
            assert stats["latency"]["cold"]["max"] >= stats["latency"]["cold"]["min"] > 0
            assert stats["store"]["hits"] == _spec().cell_groups()

    def test_records_newest_first(self, loader):
        with JobQueue(workers=1, graph_loader=loader) as q:
            a = q.submit(_spec())
            a.wait(60)
            b = q.submit(_spec(seeds=[1]))
            b.wait(60)
            assert [r.id for r in q.records()] == [b.id, a.id]

    def test_summary_is_json_safe(self, loader):
        import json

        with JobQueue(workers=1, graph_loader=loader) as q:
            record = q.submit(_spec())
            record.wait(60)
            summary = json.loads(json.dumps(record.summary()))
            assert summary["state"] == DONE
            assert summary["cells"] == 4
            assert summary["cell_groups"] == 4


class TestShutdown:
    def test_close_drains_queued_jobs(self, loader, tmp_path):
        q = JobQueue(tmp_path / "store", workers=1, graph_loader=loader)
        records = [q.submit(_spec(seeds=[s])) for s in range(3)]
        q.close(drain=True)
        assert all(r.state == DONE for r in records)
        with pytest.raises(RuntimeError, match="closed"):
            q.submit(_spec())

    def test_close_without_drain_fails_queued_jobs(self):
        gate = _GatedExecutor()
        q = JobQueue(workers=1, executor=gate)
        running = q.submit(_spec())
        assert gate.started.wait(30)
        queued = q.submit(_spec(seeds=[1]))
        assert queued.state == QUEUED and running.state == RUNNING

        closer = threading.Thread(target=lambda: q.close(drain=False))
        closer.start()
        # The queued job fails immediately; the running one still drains.
        assert queued.wait(30) and queued.state == FAILED
        assert "shutdown" in queued.error
        gate.release.set()
        closer.join(30)
        assert running.state == DONE

    def test_close_is_idempotent(self, loader):
        q = JobQueue(workers=1, graph_loader=loader)
        q.close()
        q.close()


class TestRetryPolicy:
    def test_failed_job_retries_to_success(self, graph, tmp_path):
        attempts = []

        def flaky_loader(ref):
            attempts.append(ref)
            if len(attempts) == 1:
                raise OSError("transient load failure")
            return graph

        with JobQueue(
            tmp_path / "store", workers=1, graph_loader=flaky_loader,
            max_attempts=3, backoff_base=0.01,
        ) as q:
            record = q.submit(_spec())
            assert record.wait(60) and record.state == DONE
            assert record.attempts == 2
            assert record.summary()["attempts"] == 2

    def test_attempts_exhausted_fails(self):
        gate = _GatedExecutor(fail=True)
        gate.release.set()
        with JobQueue(
            workers=1, executor=gate, max_attempts=2, backoff_base=0.01
        ) as q:
            record = q.submit(_spec())
            assert record.wait(30) and record.state == FAILED
            assert record.attempts == 2 and gate.calls == 2
            assert "synthetic job failure" in record.error

    def test_default_is_single_attempt(self):
        gate = _GatedExecutor(fail=True)
        gate.release.set()
        with JobQueue(workers=1, executor=gate) as q:
            record = q.submit(_spec())
            assert record.wait(30) and record.state == FAILED
            assert record.attempts == 1 and gate.calls == 1

    def test_retry_counter_in_metrics(self):
        gate = _GatedExecutor(fail=True)
        gate.release.set()
        with JobQueue(
            workers=1, executor=gate, max_attempts=2, backoff_base=0.01
        ) as q:
            before = q.stats()["metrics"]["repro.queue.retries"]["value"]
            record = q.submit(_spec())
            assert record.wait(30)
            after = q.stats()["metrics"]["repro.queue.retries"]["value"]
            assert after == before + 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(max_attempts=0)
        with pytest.raises(ValueError, match="job_timeout"):
            JobQueue(job_timeout=0)
        with pytest.raises(ValueError, match="max_queued"):
            JobQueue(max_queued=0)


class TestJobTimeout:
    def test_queued_past_deadline_never_starts(self):
        gate = _GatedExecutor()
        q = JobQueue(workers=1, executor=gate, job_timeout=0.2)
        try:
            running = q.submit(_spec())
            assert gate.started.wait(30)
            stuck = q.submit(_spec(seeds=[1]))
            time.sleep(0.4)  # let the deadline lapse while it waits
            gate.release.set()
            assert stuck.wait(30) and stuck.state == FAILED
            assert "timed out" in stuck.error and stuck.attempts == 0
            assert running.wait(30) and running.state == DONE
        finally:
            gate.release.set()
            q.close()

    def test_failing_job_past_deadline_stops_retrying(self):
        gate = _GatedExecutor(fail=True)
        gate.release.set()
        with JobQueue(
            workers=1, executor=gate, max_attempts=10,
            backoff_base=0.3, job_timeout=0.2,
        ) as q:
            record = q.submit(_spec())
            assert record.wait(30) and record.state == FAILED
            assert "timed out" in record.error
            assert record.attempts < 10


class TestSaturation:
    def test_max_queued_rejects_with_saturated(self):
        gate = _GatedExecutor()
        q = JobQueue(workers=1, executor=gate, max_queued=1)
        try:
            running = q.submit(_spec())
            assert gate.started.wait(30)
            q.submit(_spec(seeds=[1]))  # fills the single waiting slot
            with pytest.raises(QueueSaturated, match="saturated"):
                q.submit(_spec(seeds=[2]))
            # Coalescing onto in-flight work is still allowed when full.
            assert q.submit(_spec()) is running
        finally:
            gate.release.set()
            q.close()

    def test_closed_queue_raises_queue_closed(self, loader):
        q = JobQueue(workers=1, graph_loader=loader)
        q.close()
        with pytest.raises(QueueClosed):
            q.submit(_spec())


class TestCloseDeadline:
    def test_close_returns_true_on_clean_shutdown(self, loader):
        q = JobQueue(workers=2, graph_loader=loader)
        record = q.submit(_spec())
        assert q.close(timeout=30) is True
        assert record.state == DONE

    def test_close_shares_one_deadline_across_workers(self):
        """Four stuck workers + close(timeout=1) must return in ~1s, not
        ~4s — the satellite's whole point — and report the dirt."""
        gate = _GatedExecutor()
        q = JobQueue(workers=4, executor=gate)
        records = [q.submit(_spec(seeds=[s])) for s in range(4)]
        deadline = time.monotonic() + 30
        while gate.calls < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert gate.calls == 4
        start = time.monotonic()
        clean = q.close(timeout=1.0)
        elapsed = time.monotonic() - start
        assert clean is False
        assert elapsed < 3.0  # one shared second, not one per worker
        gate.release.set()
        assert q.close(timeout=30) is True  # idempotent re-join, now clean
