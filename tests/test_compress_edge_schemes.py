"""Tests for uniform sampling and spectral sparsification (§4.2)."""

import math

import numpy as np
import pytest

from repro.compress.spectral import SpectralSparsifier, edge_keep_probabilities
from repro.compress.uniform import RandomUniformSampling
from repro.graphs import generators as gen


class TestUniform:
    def test_expected_ratio(self, er300):
        res = RandomUniformSampling(0.3).compress(er300, seed=0)
        expected = 0.3 * er300.num_edges
        assert abs(res.graph.num_edges - expected) < 4 * math.sqrt(expected)

    def test_p_edge_cases(self, er300):
        assert RandomUniformSampling(1.0).compress(er300, seed=0).graph.num_edges == er300.num_edges
        assert RandomUniformSampling(0.0).compress(er300, seed=0).graph.num_edges == 0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            RandomUniformSampling(1.5)

    def test_kernel_path_bit_identical(self, er300):
        """The vectorized fast path and the serial kernel program consume
        the identical RNG stream, so the graphs match edge-for-edge."""
        scheme = RandomUniformSampling(0.5)
        a = scheme.compress(er300, seed=33).graph
        b = scheme.compress_via_kernels(er300, seed=33).graph
        assert np.array_equal(a.edge_src, b.edge_src)
        assert np.array_equal(a.edge_dst, b.edge_dst)

    def test_result_metadata(self, er300):
        res = RandomUniformSampling(0.4).compress(er300, seed=1)
        assert res.scheme == "uniform"
        assert res.params == {"p": 0.4}
        assert res.compression_ratio == pytest.approx(
            res.graph.num_edges / er300.num_edges
        )
        assert res.edges_removed == er300.num_edges - res.graph.num_edges

    def test_determinism(self, er300):
        s = RandomUniformSampling(0.5)
        a = s.compress(er300, seed=5).graph
        b = s.compress(er300, seed=5).graph
        assert np.array_equal(a.edge_src, b.edge_src)

    def test_subgraph_property(self, er300):
        sub = RandomUniformSampling(0.5).compress(er300, seed=2).graph
        for u, v in zip(sub.edge_src, sub.edge_dst):
            assert er300.has_edge(int(u), int(v))


class TestSpectral:
    def test_keep_probability_formula(self, er300):
        p = 0.4
        probs = edge_keep_probabilities(er300, p, "logn")
        deg = er300.degrees
        upsilon = p * math.log(er300.n)
        expected = np.minimum(
            1.0, upsilon / np.minimum(deg[er300.edge_src], deg[er300.edge_dst])
        )
        assert np.allclose(probs, expected)

    def test_avgdeg_variant_differs(self, er300):
        a = edge_keep_probabilities(er300, 0.4, "logn")
        b = edge_keep_probabilities(er300, 0.4, "avgdeg")
        assert not np.allclose(a, b)
        with pytest.raises(ValueError):
            edge_keep_probabilities(er300, 0.4, "weird")

    def test_reweighting_preserves_expected_weight(self, plc300):
        """Each kept edge has weight 1/p_uv, so E[total weight] = m."""
        totals = [
            SpectralSparsifier(0.5).compress(plc300, seed=s).graph.total_weight()
            for s in range(8)
        ]
        assert np.mean(totals) == pytest.approx(plc300.num_edges, rel=0.1)

    def test_reweight_disabled(self, plc300):
        res = SpectralSparsifier(0.5, reweight=False).compress(plc300, seed=0)
        assert not res.graph.is_weighted

    def test_kernel_path_bit_identical(self, plc300):
        scheme = SpectralSparsifier(0.5)
        a = scheme.compress(plc300, seed=8).graph
        b = scheme.compress_via_kernels(plc300, seed=8).graph
        assert np.array_equal(a.edge_src, b.edge_src)
        assert np.allclose(a.edge_weights, b.edge_weights)

    def test_degree_aware_bias(self):
        """Edges at high-degree vertices are removed more often — the §4.2.1
        cartoon in Fig. 3."""
        g = gen.rmat(10, 8, seed=1)
        res = SpectralSparsifier(0.3).compress(g, seed=2)
        sub = res.graph
        deg = g.degrees
        kept_fraction_high = sub.degrees[deg > np.quantile(deg, 0.9)].sum() / max(
            deg[deg > np.quantile(deg, 0.9)].sum(), 1
        )
        kept_fraction_low = sub.degrees[(deg > 0) & (deg <= np.quantile(deg, 0.5))].sum() / max(
            deg[(deg > 0) & (deg <= np.quantile(deg, 0.5))].sum(), 1
        )
        assert kept_fraction_high < kept_fraction_low

    def test_low_degree_vertices_keep_their_edges(self, plc300):
        """p_uv = 1 whenever min-degree <= Υ: pendant edges always survive."""
        probs = edge_keep_probabilities(plc300, 0.9, "logn")
        deg = plc300.degrees
        dmin = np.minimum(deg[plc300.edge_src], deg[plc300.edge_dst])
        assert np.all(probs[dmin <= 0.9 * math.log(plc300.n)] == 1.0)

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            SpectralSparsifier(0.5, variant="nope")
