"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph


class TestConstruction:
    def test_empty(self):
        g = CSRGraph.empty(4)
        assert g.n == 4
        assert g.num_edges == 0
        assert g.degree(0) == 0
        g.validate()

    def test_basic_undirected(self, tiny):
        assert tiny.n == 5
        assert tiny.num_edges == 5
        assert not tiny.directed
        tiny.validate()

    def test_neighbors_sorted(self, tiny):
        assert tiny.neighbors(1).tolist() == [0, 2, 3]
        assert tiny.neighbors(4).tolist() == [3]

    def test_degrees(self, tiny):
        assert tiny.degrees.tolist() == [2, 3, 2, 2, 1]
        assert tiny.degree(1) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(3, np.array([0]), np.array([5]))

    def test_rejects_non_canonical_undirected(self):
        with pytest.raises(ValueError, match="src < dst"):
            CSRGraph(3, np.array([2]), np.array([1]))

    def test_rejects_self_loop_directed(self):
        with pytest.raises(ValueError, match="self-loops"):
            CSRGraph(3, np.array([1]), np.array([1]), directed=True)

    def test_rejects_negative_vertices(self):
        with pytest.raises(ValueError):
            CSRGraph(-1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    def test_weight_shape_checked(self):
        with pytest.raises(ValueError, match="weights"):
            CSRGraph(3, np.array([0]), np.array([1]), np.array([1.0, 2.0]))


class TestFromEdges:
    def test_canonicalizes_and_drops_self_loops(self):
        g = CSRGraph.from_edges(4, [2, 1, 3, 0], [0, 1, 2, 0])
        # (1,1) and (0,0) dropped; (2,0) flipped to (0,2); (3,2)->(2,3)
        assert g.num_edges == 2
        assert g.has_edge(0, 2) and g.has_edge(2, 3)

    def test_dedup_first(self):
        g = CSRGraph.from_edges(3, [0, 1, 0], [1, 0, 1], [5.0, 7.0, 9.0])
        assert g.num_edges == 1
        assert g.weight_of(0) == 5.0

    def test_dedup_sum(self):
        g = CSRGraph.from_edges(3, [0, 1, 0], [1, 0, 1], [5.0, 7.0, 9.0], dedup="sum")
        assert g.weight_of(0) == 21.0

    def test_dedup_min_max(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 0], [5.0, 2.0], dedup="min")
        assert g.weight_of(0) == 2.0
        g = CSRGraph.from_edges(3, [0, 1], [1, 0], [5.0, 2.0], dedup="max")
        assert g.weight_of(0) == 5.0

    def test_dedup_unknown_policy(self):
        with pytest.raises(ValueError, match="dedup"):
            CSRGraph.from_edges(3, [0, 0], [1, 1], [1.0, 1.0], dedup="avg")

    def test_directed_keeps_both_orientations(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 0], directed=True)
        assert g.num_edges == 2
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [0, 1], [1])


class TestQueries:
    def test_has_edge(self, tiny):
        assert tiny.has_edge(0, 1) and tiny.has_edge(1, 0)
        assert not tiny.has_edge(0, 4)

    def test_edge_id_roundtrip(self, tiny):
        for e in range(tiny.num_edges):
            u, v = int(tiny.edge_src[e]), int(tiny.edge_dst[e])
            assert tiny.edge_id(u, v) == e
            assert tiny.edge_id(v, u) == e

    def test_edge_id_missing(self, tiny):
        with pytest.raises(KeyError):
            tiny.edge_id(0, 4)

    def test_incident_edge_ids_match_neighbors(self, tiny):
        for v in range(tiny.n):
            for u, e in zip(tiny.neighbors(v), tiny.incident_edge_ids(v)):
                endpoints = {int(tiny.edge_src[e]), int(tiny.edge_dst[e])}
                assert endpoints == {v, int(u)}

    def test_neighbor_weights_unweighted(self, tiny):
        assert tiny.neighbor_weights(1).tolist() == [1.0, 1.0, 1.0]

    def test_total_weight(self, tiny):
        assert tiny.total_weight() == 5.0
        wg = tiny.with_weights(np.full(5, 2.5))
        assert wg.total_weight() == 12.5

    def test_in_degrees_directed(self):
        g = CSRGraph.from_edges(3, [0, 1, 2], [1, 2, 1], directed=True)
        assert g.in_degrees.tolist() == [0, 2, 1]
        assert g.degrees.tolist() == [1, 1, 1]


class TestDerivation:
    def test_keep_edges(self, tiny):
        mask = np.array([True, False, True, False, True])
        sub = tiny.keep_edges(mask)
        assert sub.num_edges == 3
        assert sub.n == tiny.n  # vertex set preserved
        sub.validate()

    def test_keep_edges_bad_mask(self, tiny):
        with pytest.raises(ValueError):
            tiny.keep_edges(np.ones(3, dtype=bool))

    def test_delete_edges(self, tiny):
        sub = tiny.delete_edges([0, 0, 4])  # duplicates fine
        assert sub.num_edges == 3
        assert not sub.has_edge(3, 4)

    def test_remove_vertices_keeps_ids(self, tiny):
        sub = tiny.remove_vertices([4])
        assert sub.n == 5
        assert sub.degree(4) == 0
        assert sub.num_edges == 4

    def test_remove_vertices_relabel(self, tiny):
        sub = tiny.remove_vertices([4], relabel=True)
        assert sub.n == 4
        assert sub.num_edges == 4
        sub.validate()

    def test_with_weights_roundtrip(self, tiny):
        w = np.arange(5, dtype=float) + 1
        wg = tiny.with_weights(w)
        assert wg.is_weighted
        back = wg.with_weights(None)
        assert not back.is_weighted

    def test_relabeled_contracts(self, tiny):
        # Merge vertices 0,1,2 (the triangle) into one vertex.
        mapping = np.array([0, 0, 0, 1, 2])
        sub = tiny.relabeled(mapping, 3)
        assert sub.n == 3
        # Triangle edges vanish as self-loops; (1,3) -> (0,1); (3,4) -> (1,2)
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_relabeled_shape_checked(self, tiny):
        with pytest.raises(ValueError):
            tiny.relabeled(np.array([0, 1]), 2)

    def test_to_undirected(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 0], directed=True)
        u = g.to_undirected()
        assert not u.directed
        assert u.num_edges == 1


class TestInterop:
    def test_to_scipy_symmetric(self, tiny):
        mat = tiny.to_scipy()
        assert mat.shape == (5, 5)
        assert (mat != mat.T).nnz == 0
        assert mat.nnz == 2 * tiny.num_edges

    def test_to_scipy_weighted(self, tiny):
        w = np.arange(5, dtype=float) + 1
        mat = tiny.with_weights(w).to_scipy()
        assert mat[0, 1] == mat[1, 0] == w[tiny.edge_id(0, 1)]

    def test_repr(self, tiny):
        assert "n=5" in repr(tiny) and "m=5" in repr(tiny)
