"""Tests for repro.obs.resources: RSS/CPU/GC sampling (stdlib only)."""

import os
import sys

from repro.obs.resources import cpu_seconds, peak_rss_bytes, sample_resources


class TestPeakRSS:
    def test_positive_and_plausible_on_posix(self):
        rss = peak_rss_bytes()
        if sys.platform == "win32":
            assert rss == 0
            return
        # A running CPython interpreter holds at least a few MiB and
        # (well) under a TiB — catches unit errors (KiB vs bytes) both ways.
        assert 1_000_000 < rss < 1_000_000_000_000

    def test_monotone_nondecreasing(self):
        before = peak_rss_bytes()
        ballast = [bytes(1024) for _ in range(1000)]
        after = peak_rss_bytes()
        del ballast
        assert after >= before


class TestCPUSeconds:
    def test_accumulates(self):
        start = cpu_seconds()
        acc = 0
        for i in range(200_000):
            acc += i
        assert cpu_seconds() >= start
        assert acc > 0


class TestSampleResources:
    def test_shape(self):
        sample = sample_resources()
        assert sample["pid"] == os.getpid()
        for key in (
            "peak_rss_bytes",
            "cpu_seconds",
            "cpu_user_seconds",
            "cpu_system_seconds",
        ):
            assert key in sample
            assert sample[key] >= 0
        gc_stats = sample["gc"]
        assert set(gc_stats) >= {"collections", "collected", "uncollectable"}

    def test_json_safe(self):
        import json

        json.dumps(sample_resources())

    def test_tracemalloc_fields_only_when_tracing(self):
        import tracemalloc

        if tracemalloc.is_tracing():  # some harnesses trace globally
            assert "tracemalloc_current_bytes" in sample_resources()
            return
        assert "tracemalloc_current_bytes" not in sample_resources()
        tracemalloc.start()
        try:
            sample = sample_resources()
            assert sample["tracemalloc_current_bytes"] >= 0
            assert sample["tracemalloc_peak_bytes"] >= 0
        finally:
            tracemalloc.stop()
