"""Tests for Triangle Reduction — the paper's novel scheme (§4.3)."""

import numpy as np
import pytest

from repro.algorithms.components import connected_components
from repro.algorithms.mst import kruskal
from repro.algorithms.triangles import count_triangles, list_triangles
from repro.compress.triangle_reduction import TriangleReduction
from repro.graphs import generators as gen
from repro.graphs.weights import with_uniform_weights


class TestBasicTR:
    def test_p_zero_is_identity(self, plc300):
        res = TriangleReduction(0.0).compress(plc300, seed=0)
        assert res.graph.num_edges == plc300.num_edges

    def test_p_one_reduces_every_listed_triangle(self, plc300):
        res = TriangleReduction(1.0).compress(plc300, seed=0)
        t = list_triangles(plc300).count
        assert res.extras["triangles_reduced"] == t
        assert res.graph.num_edges < plc300.num_edges

    def test_expected_removal_at_most_pT(self, plc300):
        """Table 2: #remaining edges is m − pT at most (overlap reduces)."""
        p = 0.5
        t = count_triangles(plc300)
        res = TriangleReduction(p).compress(plc300, seed=1)
        removed = res.edges_removed
        assert removed <= p * t + 4 * np.sqrt(t)
        assert removed > 0

    def test_triangle_free_graph_untouched(self, grid10):
        res = TriangleReduction(0.9).compress(grid10, seed=0)
        assert res.graph.num_edges == grid10.num_edges
        assert res.extras["triangles"] == 0

    def test_x2_removes_more(self, plc300):
        r1 = TriangleReduction(0.7, x=1).compress(plc300, seed=3)
        r2 = TriangleReduction(0.7, x=2).compress(plc300, seed=3)
        assert r2.graph.num_edges < r1.graph.num_edges

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TriangleReduction(0.5, x=3)
        with pytest.raises(ValueError):
            TriangleReduction(0.5, variant="unknown")
        with pytest.raises(ValueError):
            TriangleReduction(0.5, x=2, variant="max_weight")
        with pytest.raises(ValueError):
            TriangleReduction(1.2)


class TestEdgeOnce:
    def test_edge_once_considers_each_edge_once(self, plc300):
        """At p=1 with EO, removed edges = edges that won some first-draw;
        every removal lottery touches a distinct edge."""
        res = TriangleReduction(1.0, variant="edge_once").compress(plc300, seed=2)
        assert res.graph.num_edges < plc300.num_edges

    def test_eo_deletes_at_most_one_edge_per_disjoint_triangle(self):
        """On a strip, triangles share edges; EO still leaves >= 2 edges in
        any *edge-disjoint* triangle it touches first."""
        g = gen.triangle_strip(20)
        res = TriangleReduction(1.0, variant="edge_once").compress(g, seed=4)
        # Connectivity preserved: one edge removed per triangle never cuts.
        assert connected_components(res.graph).num_components == 1

    def test_eo_preserves_components_on_clustered_graph(self, plc300):
        before = connected_components(plc300).num_components
        res = TriangleReduction(0.8, variant="edge_once").compress(plc300, seed=6)
        after = connected_components(res.graph).num_components
        # §7.2: "spanners and the EO variant of TR maintain the number of CC"
        assert after == before

    def test_kernel_path_valid(self, plc300):
        scheme = TriangleReduction(0.6, variant="edge_once")
        res = scheme.compress_via_kernels(plc300, seed=3)
        # Subgraph of the original with a plausible removal count.
        assert 0 < res.graph.num_edges <= plc300.num_edges
        for u, v in zip(res.graph.edge_src, res.graph.edge_dst):
            assert plc300.has_edge(int(u), int(v))


class TestCountTrianglesVariant:
    def test_ct_prefers_low_count_edges(self, plc300):
        """CT removes edges in few triangles first: the surviving graph
        keeps more triangles than EO at the same p (multi-triangle edges
        are protected deterministically)."""
        ct = TriangleReduction(0.5, variant="count_triangles").compress(plc300, seed=7)
        eo = TriangleReduction(0.5, variant="edge_once").compress(plc300, seed=7)
        assert count_triangles(ct.graph) >= count_triangles(eo.graph)

    def test_ct_kernel_path(self, plc300):
        res = TriangleReduction(0.5, variant="count_triangles").compress_via_kernels(
            plc300, seed=7
        )
        assert res.graph.num_edges < plc300.num_edges


class TestMaxWeight:
    def test_mst_weight_preserved_exactly(self, plc300):
        wg = with_uniform_weights(plc300, seed=11)
        before = kruskal(wg).total_weight
        for p in (0.3, 1.0):
            res = TriangleReduction(p, variant="max_weight").compress(wg, seed=1)
            after = kruskal(res.graph).total_weight
            assert after == pytest.approx(before, abs=1e-9)

    def test_mst_weight_preserved_kernel_path(self, plc300):
        wg = with_uniform_weights(plc300, seed=11)
        before = kruskal(wg).total_weight
        res = TriangleReduction(1.0, variant="max_weight").compress_via_kernels(wg, seed=1)
        assert kruskal(res.graph).total_weight == pytest.approx(before)

    def test_unweighted_graph_supported(self, plc300):
        res = TriangleReduction(0.5, variant="max_weight").compress(plc300, seed=0)
        assert res.graph.num_edges <= plc300.num_edges


class TestCollapse:
    def test_collapse_shrinks_vertices(self, plc300):
        res = TriangleReduction(0.7, variant="collapse").compress(plc300, seed=5)
        assert res.graph.n < plc300.n
        assert res.graph.num_edges < plc300.num_edges
        res.graph.validate()

    def test_collapse_count_matches_vertex_loss(self, plc300):
        res = TriangleReduction(0.7, variant="collapse").compress(plc300, seed=5)
        collapsed = res.extras["triangles_collapsed"]
        # Each collapsed triangle merges 3 vertices into 1 (loses 2).
        assert plc300.n - res.graph.n == 2 * collapsed

    def test_collapse_preserves_connectivity(self, plc300):
        before = connected_components(plc300).num_components
        res = TriangleReduction(0.9, variant="collapse").compress(plc300, seed=3)
        after = connected_components(res.graph).num_components
        assert after == before  # contraction never disconnects

    def test_collapse_mapping_is_surjective(self, plc300):
        res = TriangleReduction(0.5, variant="collapse").compress(plc300, seed=9)
        mapping = res.extras["mapping"]
        assert len(np.unique(mapping)) == res.graph.n


class TestFig6Right:
    def test_variant_reduction_ordering(self):
        """Fig. 6 (right): at fixed p, EO and CT differ from basic TR in
        removed-edge volume; all reduce, and EO/CT never remove more than
        one lottery per edge."""
        g = gen.powerlaw_cluster(500, 6, 0.8, seed=13)
        m = g.num_edges
        results = {
            v: TriangleReduction(0.5, variant=v).compress(g, seed=21).edge_reduction
            for v in ("basic", "edge_once", "count_triangles")
        }
        assert all(0 < r < 1 for r in results.values())
        # EO protects multi-triangle edges -> it removes no more than basic
        # (they coincide only when no triangles overlap).
        assert results["edge_once"] <= results["basic"] + 0.02
