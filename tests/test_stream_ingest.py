"""Generations and the ledger: apply semantics, fingerprints, caching.

The streaming contract under test: every applied batch yields a *new*
immutable generation bit-identical to a from-scratch rebuild of the
edited edge set, the ledger chains generations by content fingerprint,
and the identity-keyed analysis cache plus the content-addressed
artifact store key each generation independently — a cached triangle
listing can never leak from generation ``i`` to generation ``i+1``.
"""

import numpy as np
import pytest

from repro.algorithms.triangles import list_triangles
from repro.graphs.analysis import analysis_cache
from repro.graphs.csr import CSRGraph
from repro.graphs.snapshot import load_snapshot, save_snapshot
from repro.runner.fingerprint import graph_fingerprint
from repro.runner.store import ArtifactStore
from repro.stream.delta import EdgeDelta
from repro.stream.ingest import GraphStream, apply_delta


@pytest.fixture
def g5():
    #   0 - 1
    #   | / |
    #   2   3 - 4
    return CSRGraph.from_edges(5, [0, 0, 1, 1, 3], [1, 2, 2, 3, 4])


def assert_buffers_identical(a: CSRGraph, b: CSRGraph) -> None:
    assert a.n == b.n and a.directed == b.directed
    for name in ("edge_src", "edge_dst", "indptr", "indices", "arc_edge_ids"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    if a.edge_weights is None:
        assert b.edge_weights is None
    else:
        assert np.array_equal(a.edge_weights, b.edge_weights)


class TestApplyDelta:
    def test_matches_from_scratch_rebuild(self, g5):
        delta = EdgeDelta.build(
            inserts=[(2, 3), (0, 3)], deletes=[(0, 1), (3, 4)]
        )
        out = apply_delta(g5, delta)
        expected = CSRGraph.from_edges(
            5, [0, 0, 1, 1, 2], [2, 3, 2, 3, 3]
        )
        assert_buffers_identical(out, expected)

    def test_weighted_full_cycle(self, g5):
        wg = g5.with_weights(np.arange(1.0, 6.0))
        delta = EdgeDelta.build(
            inserts=[(2, 4, 9.0)], deletes=[(0, 1)], updates=[(1, 3, 0.5)]
        )
        out = apply_delta(wg, delta)
        pairs = dict(
            zip(
                zip(out.edge_src.tolist(), out.edge_dst.tolist()),
                out.edge_weights.tolist(),
            )
        )
        assert (0, 1) not in pairs
        assert pairs[(2, 4)] == 9.0
        assert pairs[(1, 3)] == 0.5
        assert pairs[(0, 2)] == 2.0  # untouched weight intact

    def test_vertex_growth_covers_inserted_endpoints(self, g5):
        out = apply_delta(g5, EdgeDelta.build(inserts=[(4, 7)]))
        assert out.n == 8

    def test_explicit_num_vertices_grows_isolated(self, g5):
        out = apply_delta(g5, EdgeDelta.empty(num_vertices=9))
        assert out.n == 9
        assert out.num_edges == g5.num_edges

    def test_delete_of_non_edge_named(self, g5):
        with pytest.raises(ValueError, match=r"delete of a non-edge.*\(0, 4\)"):
            apply_delta(g5, EdgeDelta.build(deletes=[(0, 4)]))

    def test_update_of_non_edge_named(self, g5):
        wg = g5.with_weights(np.ones(5))
        with pytest.raises(ValueError, match=r"update of a non-edge"):
            apply_delta(wg, EdgeDelta.build(updates=[(0, 4, 1.0)]))

    def test_update_on_unweighted_rejected(self, g5):
        with pytest.raises(ValueError, match="require a weighted graph"):
            apply_delta(g5, EdgeDelta.build(updates=[(0, 1, 1.0)]))

    def test_directedness_mismatch_rejected(self, g5):
        delta = EdgeDelta.build(inserts=[(0, 3)], directed=True)
        with pytest.raises(ValueError, match="directed delta to a undirected"):
            apply_delta(g5, delta)


class TestGraphStream:
    def deltas(self):
        return [
            EdgeDelta.build(
                inserts=[(0, 1), (0, 2), (1, 2), (2, 3)], num_vertices=5
            ),
            EdgeDelta.build(inserts=[(3, 4)], deletes=[(0, 1)]),
            EdgeDelta.build(inserts=[(1, 4)]),
        ]

    def test_replay_from_empty_matches_rebuild(self):
        stream = GraphStream()
        head = stream.replay(self.deltas())
        expected = CSRGraph.from_edges(
            5, [0, 1, 1, 2, 3], [2, 2, 4, 3, 4]
        )
        assert_buffers_identical(head, expected)
        assert stream.generation == 3

    def test_ledger_chains_fingerprints(self):
        stream = GraphStream()
        deltas = self.deltas()
        stream.replay(deltas)
        records = stream.records
        assert len(records) == 4
        assert records[0].delta_id is None
        for parent, child, delta in zip(records, records[1:], deltas):
            assert child.parent_fingerprint == parent.fingerprint
            assert child.delta_id == delta.delta_id
        assert stream.head_fingerprint == graph_fingerprint(stream.head)
        assert records[-1].num_edges == stream.head.num_edges

    def test_ledger_rows_are_json_safe(self):
        import json

        stream = GraphStream()
        stream.replay(self.deltas())
        rows = stream.ledger()
        assert json.loads(json.dumps(rows)) == rows

    def test_fingerprint_stable_across_snapshot_roundtrip(self, tmp_path):
        stream = GraphStream()
        stream.replay(self.deltas())
        path = save_snapshot(stream.head, tmp_path / "head.npz")
        assert graph_fingerprint(load_snapshot(path)) == stream.head_fingerprint

    def test_same_deltas_same_fingerprints(self):
        a, b = GraphStream(), GraphStream()
        a.replay(self.deltas())
        b.replay(self.deltas())
        assert [r.fingerprint for r in a.records] == [
            r.fingerprint for r in b.records
        ]


class TestGenerationCaching:
    def test_cached_analysis_does_not_leak_across_generations(self):
        stream = GraphStream()
        stream.apply(
            EdgeDelta.build(inserts=[(0, 1), (0, 2), (1, 2)], num_vertices=4)
        )
        g1 = stream.head
        assert len(list_triangles(g1)) == 1
        assert analysis_cache().peek(g1, "triangle_list") is not None

        # Close the square into a second triangle; the new generation
        # must start cold and recount, the old keeps its cached listing.
        stream.apply(EdgeDelta.build(inserts=[(1, 3), (2, 3)]))
        g2 = stream.head
        assert g2 is not g1
        assert analysis_cache().peek(g2, "triangle_list") is None
        assert len(list_triangles(g2)) == 2
        assert len(analysis_cache().peek(g1, "triangle_list")) == 1

    def test_generations_adopt_analyses_through_the_store(self, tmp_path):
        stream = GraphStream()
        stream.apply(
            EdgeDelta.build(inserts=[(0, 1), (0, 2), (1, 2)], num_vertices=3)
        )
        head = stream.head
        list_triangles(head)  # populate the cache for this generation

        store = ArtifactStore(tmp_path / "store")
        fp, _ = store.add_graph(head, stream.head_fingerprint)
        reloaded = store.load_graph(fp)
        # content twin: adopted the live generation's triangle listing
        assert analysis_cache().peek(reloaded, "triangle_list") is not None

    def test_store_keys_cells_per_generation(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        stream = GraphStream()
        stream.apply(EdgeDelta.build(inserts=[(0, 1), (1, 2)], num_vertices=3))
        fp1 = stream.head_fingerprint
        stream.apply(EdgeDelta.build(inserts=[(0, 2)]))
        fp2 = stream.head_fingerprint

        k1 = store.cell_key(fp1, "spanner(k=4)", 0, "pagerank")
        k2 = store.cell_key(fp2, "spanner(k=4)", 0, "pagerank")
        assert k1.digest != k2.digest  # a generation never aliases another

        store.put_cells(k1, {"value": 1})
        store.put_cells(k2, {"value": 2})
        assert store.get_cells(k1)["value"] == 1
        assert store.get_cells(k2)["value"] == 2

        # An equal generation rebuilt elsewhere keys the same cell.
        twin = CSRGraph.from_edges(3, [0, 0, 1], [1, 2, 2])
        k3 = store.cell_key(graph_fingerprint(twin), "spanner(k=4)", 0, "pagerank")
        assert k3.digest == k2.digest


class TestFaultedApply:
    def test_faulted_apply_leaves_stream_unchanged(self, g5):
        from repro.faults import FaultPlan, FaultSpec, InjectedFault, injected_faults

        stream = GraphStream(g5)
        head_before = stream.head
        ledger_before = stream.ledger()
        delta = EdgeDelta.build(inserts=[(2, 4)])
        plan = FaultPlan(faults=(FaultSpec("stream.apply"),))
        with injected_faults(plan):
            with pytest.raises(InjectedFault):
                stream.apply(delta)
        # The fault fired before any mutation: same head object, same
        # ledger — the caller can retry the very same delta.
        assert stream.head is head_before
        assert stream.ledger() == ledger_before
        retried = stream.apply(delta)
        assert retried.num_edges == g5.num_edges + 1
        assert stream.generation == 1
