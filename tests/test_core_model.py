"""Tests for the programming model: views, SG, atomic buffers."""

import numpy as np
import pytest

from repro.core.atomic import DeletionBuffer, EdgeFlags
from repro.core.kernels import EdgeView, SubgraphView, TriangleView, VertexView
from repro.core.sg import SG
from repro.graphs.csr import CSRGraph


class TestViews:
    def test_vertex_view(self, tiny):
        v = VertexView(tiny, 1)
        assert v.deg == 3
        assert v.neighbors.tolist() == [0, 2, 3]
        assert len(v.incident_edge_ids) == 3

    def test_edge_view_exposes_paper_fields(self, tiny):
        e = EdgeView(tiny, tiny.edge_id(0, 1))
        assert {e.u.id, e.v.id} == {0, 1}
        assert e.u.deg == tiny.degree(e.u.id)
        assert e.weight == 1.0

    def test_edge_view_weighted(self, tiny):
        wg = tiny.with_weights(np.arange(5, dtype=float) + 1)
        e = EdgeView(wg, 2)
        assert e.weight == 3.0

    def test_triangle_view(self, tiny):
        eids = (tiny.edge_id(0, 1), tiny.edge_id(0, 2), tiny.edge_id(1, 2))
        t = TriangleView(tiny, (0, 1, 2), eids)
        assert t.weights.tolist() == [1.0, 1.0, 1.0]
        assert t.max_weight_edge() == min(eids)  # tie -> lowest id
        assert [e.id for e in t.edges()] == list(eids)

    def test_triangle_max_weight_edge(self, tiny):
        w = np.array([1.0, 5.0, 2.0, 1.0, 1.0])
        wg = tiny.with_weights(w)
        eids = (wg.edge_id(0, 1), wg.edge_id(0, 2), wg.edge_id(1, 2))
        t = TriangleView(wg, (0, 1, 2), eids)
        assert t.max_weight_edge() == int(np.argmax(w[list(eids)])) and True
        assert wg.weight_of(t.max_weight_edge()) == max(w[list(eids)])

    def test_subgraph_view(self, tiny):
        mapping = np.array([0, 0, 0, 1, 1])
        sub = SubgraphView(tiny, 0, np.array([0, 1, 2]), mapping)
        assert len(sub) == 3
        internal = sub.internal_edge_ids()
        assert sorted(internal.tolist()) == sorted(
            [tiny.edge_id(0, 1), tiny.edge_id(0, 2), tiny.edge_id(1, 2)]
        )
        out_eids, out_clusters = sub.out_edges()
        assert out_eids.tolist() == [tiny.edge_id(1, 3)]
        assert out_clusters.tolist() == [1]
        assert sub.neighborhood_union().tolist() == [3]


class TestDeletionBuffer:
    def test_apply_edge_deletions(self, tiny):
        buf = DeletionBuffer(tiny.n, tiny.num_edges)
        buf.delete_edge(0)
        buf.delete_edges([2, 2])
        out = buf.apply(tiny)
        assert out.num_edges == 3
        assert buf.num_deleted_edges == 2

    def test_apply_vertex_deletions(self, tiny):
        buf = DeletionBuffer(tiny.n, tiny.num_edges)
        buf.delete_vertex(1)
        out = buf.apply(tiny)
        assert out.n == tiny.n
        assert out.degree(1) == 0

    def test_apply_relabel(self, tiny):
        buf = DeletionBuffer(tiny.n, tiny.num_edges)
        buf.delete_vertex(4)
        out = buf.apply(tiny, relabel_vertices=True)
        assert out.n == 4

    def test_weight_updates(self, tiny):
        buf = DeletionBuffer(tiny.n, tiny.num_edges)
        buf.set_weight(0, 42.0)
        out = buf.apply(tiny)
        assert out.is_weighted
        assert out.weight_of(0) == 42.0

    def test_weight_update_then_delete_other(self, tiny):
        buf = DeletionBuffer(tiny.n, tiny.num_edges)
        buf.set_weight(4, 9.0)
        buf.delete_edge(0)
        out = buf.apply(tiny)
        assert out.num_edges == 4
        # Edge 4 is renumbered after deletion of edge 0 but keeps weight.
        assert 9.0 in out.edge_weights

    def test_merge_is_union(self, tiny):
        a = DeletionBuffer(tiny.n, tiny.num_edges)
        b = DeletionBuffer(tiny.n, tiny.num_edges)
        a.delete_edge(0)
        b.delete_edge(1)
        b.delete_vertex(4)
        a.merge(b)
        assert a.num_deleted_edges == 2
        assert a.num_deleted_vertices == 1

    def test_shape_mismatch(self, tiny):
        buf = DeletionBuffer(3, 2)
        with pytest.raises(ValueError):
            buf.apply(tiny)


class TestEdgeFlags:
    def test_test_and_set(self):
        flags = EdgeFlags(3)
        assert flags.test_and_set(1) is True
        assert flags.test_and_set(1) is False
        assert flags.test_and_set(0) is True

    def test_merge(self):
        a, b = EdgeFlags(3), EdgeFlags(3)
        a.test_and_set(0)
        b.test_and_set(2)
        a.merge(b)
        assert not a.test_and_set(2)


class TestSG:
    def test_params_and_p(self, tiny):
        sg = SG(tiny, {"p": 0.3})
        assert sg.p == 0.3
        assert sg.param("missing", 7) == 7

    def test_rand_range(self, tiny):
        sg = SG(tiny, seed=0)
        values = [sg.rand() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 90

    def test_rand_choice(self, tiny):
        sg = SG(tiny, seed=0)
        pool = [10, 20, 30]
        assert all(sg.rand_choice(pool) in pool for _ in range(20))

    def test_delete_overloads(self, tiny):
        sg = SG(tiny)
        sg.delete(EdgeView(tiny, 0))
        sg.delete(VertexView(tiny, 4))
        sg.delete(2)
        assert sg.buffer.edge_deleted[0] and sg.buffer.edge_deleted[2]
        assert sg.buffer.vertex_deleted[4]
        with pytest.raises(TypeError):
            sg.delete("edge")

    def test_delete_triangle_view(self, tiny):
        sg = SG(tiny)
        t = TriangleView(tiny, (0, 1, 2), (0, 1, 2))
        sg.delete(t)
        assert sg.buffer.num_deleted_edges == 3

    def test_considered_once(self, tiny):
        sg = SG(tiny)
        assert sg.considered_once(1)
        assert not sg.considered_once(1)

    def test_spectral_parameter_variants(self, tiny):
        import math

        sg = SG(tiny, {"p": 0.5, "spectral_variant": "logn"})
        assert sg.connectivity_spectral_parameter() == pytest.approx(
            0.5 * math.log(5)
        )
        sg.params["spectral_variant"] = "avgdeg"
        assert sg.connectivity_spectral_parameter() == pytest.approx(0.5 * 5 / 5)
        sg.params["spectral_variant"] = "bogus"
        with pytest.raises(ValueError):
            sg.connectivity_spectral_parameter()

    def test_convergence_voting(self, tiny):
        sg = SG(tiny)
        sg.update_convergence(True)
        assert sg.converged
        sg.update_convergence(False)
        assert not sg.converged
        sg.update_convergence(True)
        assert not sg.converged  # any False vote sticks for the round
        sg.fresh_buffers()
        assert sg.converged
