"""Tests for the declarative algorithm spec, the algorithm registry, the
result adapters, and the metric registry."""

import json

import numpy as np
import pytest

from repro.algorithms import (
    AlgorithmSpec,
    build_algorithm,
    register_algorithm,
    registered_algorithms,
    unregister_algorithm,
)
from repro.algorithms.adapters import get_adapter, registered_adapters
from repro.algorithms.registry import resolve_algorithm
from repro.metrics.registry import (
    metrics_for_adapter,
    register_metric,
    registered_metrics,
    resolve_metric,
    unregister_metric,
)


class TestAlgorithmSpecRoundTrip:
    def test_parse_format_stable(self):
        for text in [
            "pagerank(iterations=50)",
            "sssp(delta=2.0, source=0)",
            "cc",
            "bfs(source=3)",
            "betweenness(num_sources=32, seed=0)",
        ]:
            spec = AlgorithmSpec.parse(text)
            assert AlgorithmSpec.parse(spec.to_string()) == spec

    def test_every_registered_example_parses(self):
        for name, entry in registered_algorithms().items():
            spec = AlgorithmSpec.parse(entry.example)
            assert spec.name == name
            assert AlgorithmSpec.parse(spec.to_string()) == spec

    def test_int_params_stay_int(self):
        spec = AlgorithmSpec.parse("pagerank(iterations=50)")
        value = spec.params["max_iterations"]
        assert value == 50 and isinstance(value, int)
        delta = AlgorithmSpec.parse("sssp(delta=2.0, source=0)").params["delta"]
        assert isinstance(delta, float)

    def test_json_transport(self):
        spec = AlgorithmSpec.parse("sssp(delta=2.0, source=0)")
        wire = json.loads(json.dumps(spec.to_dict()))
        assert AlgorithmSpec.from_dict(wire) == spec
        # ints survive the wire
        spec2 = AlgorithmSpec.parse("pagerank(iterations=50)")
        back = AlgorithmSpec.from_dict(json.loads(json.dumps(spec2.to_dict())))
        assert isinstance(back.params["max_iterations"], int)

    def test_equality_and_hash_params_driven(self):
        a = AlgorithmSpec.parse("pagerank(iterations=50)")
        b = AlgorithmSpec("pagerank", {"max_iterations": 50})
        c = AlgorithmSpec.parse("pagerank(iterations=51)")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_paper_aliases_resolve(self):
        assert AlgorithmSpec.parse("pr").name == "pagerank"
        assert AlgorithmSpec.parse("cc").name == "connected_components"
        assert AlgorithmSpec.parse("tc").name == "count_triangles"
        assert AlgorithmSpec.parse("bfs").name == "bfs"
        assert resolve_algorithm("MST") == "mst"
        assert resolve_algorithm("bc") == "betweenness"

    def test_param_alias_canonicalized(self):
        a = AlgorithmSpec.parse("pagerank(iterations=9)")
        b = AlgorithmSpec.parse("pagerank(max_iterations=9)")
        assert a == b

    def test_positional_binds_registered_parameter(self):
        assert AlgorithmSpec.parse("bfs(3)") == AlgorithmSpec.parse("bfs(source=3)")

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            AlgorithmSpec.parse("")
        with pytest.raises(ValueError):
            AlgorithmSpec.parse("pagerank(iterations=)")
        with pytest.raises(ValueError):
            AlgorithmSpec.parse("sssp(delta=2.0, 7)")  # positional not first
        with pytest.raises(ValueError):
            AlgorithmSpec.parse("pagerank(7)")  # no positional declared


class TestAlgorithmRegistry:
    def test_all_modules_registered(self):
        names = set(registered_algorithms())
        assert {
            "arboricity",
            "betweenness",
            "bfs",
            "coloring",
            "coloring_number",
            "connected_components",
            "count_triangles",
            "degeneracy",
            "kcore",
            "matching",
            "mis",
            "mst",
            "pagerank",
            "path_stats",
            "spectrum",
            "sssp",
            "triangles_per_vertex",
        } <= names

    def test_every_entry_has_valid_adapter(self):
        adapters = set(registered_adapters())
        for entry in registered_algorithms().values():
            assert entry.adapter in adapters

    def test_build_and_compute(self, plc300):
        pr = build_algorithm("pagerank(iterations=20)")
        ranks = pr.compute(plc300)
        assert ranks.shape == (plc300.n,)
        assert ranks.sum() == pytest.approx(1.0)
        cc = build_algorithm("cc")
        assert cc.compute(plc300) >= 1.0
        mis = build_algorithm("mis")
        out = mis.compute(plc300)
        assert isinstance(out, frozenset)

    def test_bound_equality_keys_cache(self):
        a = build_algorithm("pr", iterations=30)
        b = build_algorithm("pagerank(max_iterations=30)")
        assert a == b and hash(a) == hash(b)
        assert a != build_algorithm("pr", iterations=31)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_algorithm("quantum_walk")

    def test_collision_rejected(self):
        @register_algorithm("tmp_collision_probe", adapter="scalar")
        def probe(g):
            return 0

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_algorithm("tmp_collision_probe", adapter="scalar")(
                    lambda g: 1
                )
            with pytest.raises(ValueError, match="already registered"):
                register_algorithm(
                    "other_name", adapter="scalar", aliases=("tmp_collision_probe",)
                )(lambda g: 2)
            # Alias colliding with an existing alias is rejected too.
            with pytest.raises(ValueError, match="already registered"):
                register_algorithm("another_name", adapter="scalar", aliases=("pr",))(
                    lambda g: 3
                )
        finally:
            unregister_algorithm("tmp_collision_probe")

    def test_unknown_adapter_rejected_at_registration(self):
        with pytest.raises(ValueError, match="unknown result adapter"):
            register_algorithm("tmp_bad_adapter", adapter="tensor")

    def test_unregister_removes_aliases(self):
        register_algorithm("tmp_gone", adapter="scalar", aliases=("tmp_gone_alias",))(
            lambda g: 0
        )
        unregister_algorithm("tmp_gone")
        assert resolve_algorithm("tmp_gone") is None
        assert resolve_algorithm("tmp_gone_alias") is None


class TestResultAdapters:
    def test_legacy_kinds_resolve(self):
        assert get_adapter("vector").name == "ordering"
        assert get_adapter("bfs").name == "traversal"
        assert get_adapter("scalar").name == "scalar"

    def test_distribution_canonicalize_is_ranks_aware(self, plc300):
        from repro.algorithms.pagerank import pagerank

        res = pagerank(plc300, max_iterations=10)
        arr = get_adapter("distribution").canonicalize(res)
        assert isinstance(arr, np.ndarray)
        np.testing.assert_allclose(arr, res.ranks)

    def test_align_through_mapping(self):
        adapter = get_adapter("distribution")
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([10.0, 20.0])
        mapping = np.array([0, 1, 1, -1])
        a2, b2 = adapter.align(a, b, mapping)
        np.testing.assert_allclose(b2, [10.0, 20.0, 20.0, 0.0])

    def test_align_falls_back_to_padding(self):
        adapter = get_adapter("ordering")
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([5.0, 6.0])
        _, b2 = adapter.align(a, b, None)
        np.testing.assert_allclose(b2, [5.0, 6.0, 0.0])


class TestMetricRegistry:
    def test_builtins_present_with_aliases(self):
        names = set(registered_metrics())
        assert {
            "kl_divergence",
            "js_divergence",
            "relative_change",
            "reordered_neighbor_pairs",
            "jaccard_overlap",
            "critical_edge_preservation",
        } <= names
        assert resolve_metric("kl").name == "kl_divergence"
        assert resolve_metric("critical_edges").name == "critical_edge_preservation"

    def test_adapter_compatibility_sets(self):
        dist = {e.name for e in metrics_for_adapter("distribution")}
        assert "kl_divergence" in dist and "relative_change" not in dist
        scal = {e.name for e in metrics_for_adapter("scalar")}
        assert scal == {"absolute_change", "relative_change"}

    def test_default_metric_per_adapter_is_registered(self):
        for adapter in registered_adapters().values():
            entry = resolve_metric(adapter.default_metric)
            assert adapter.name in entry.adapters

    def test_register_and_collision(self):
        @register_metric("tmp_metric", adapters=("scalar",), aliases=("tmpm",))
        def tmp_metric(ctx, a, b):
            return 0.0

        try:
            assert resolve_metric("tmpm").name == "tmp_metric"
            with pytest.raises(ValueError, match="already registered"):
                register_metric("tmp_metric", adapters=("scalar",))(
                    lambda ctx, a, b: 1.0
                )
            with pytest.raises(ValueError, match="already registered"):
                register_metric("tmp_metric2", adapters=("scalar",), aliases=("kl",))(
                    lambda ctx, a, b: 1.0
                )
        finally:
            unregister_metric("tmp_metric")
        with pytest.raises(ValueError):
            resolve_metric("tmp_metric")

    def test_metric_requires_adapter(self):
        with pytest.raises(ValueError, match="at least one adapter"):
            register_metric("tmp_no_adapter", adapters=())
