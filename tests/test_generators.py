"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.generators import _decode_pair_ranks


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = gen.erdos_renyi(50, m=200, seed=0)
        assert g.num_edges == 200
        g.validate()

    def test_p_variant_expectation(self):
        n, p = 200, 0.05
        g = gen.erdos_renyi(n, p=p, seed=1)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 5 * np.sqrt(expected)

    def test_decode_pair_ranks_exhaustive(self):
        for n in (2, 3, 5, 9):
            total = n * (n - 1) // 2
            u, v = _decode_pair_ranks(np.arange(total), n)
            expected = [(a, b) for a in range(n) for b in range(a + 1, n)]
            assert list(zip(u.tolist(), v.tolist())) == expected

    def test_rejects_both_p_and_m(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, p=0.5, m=5)

    def test_rejects_too_many_edges(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(4, m=100)

    def test_deterministic(self):
        a = gen.erdos_renyi(40, m=100, seed=9)
        b = gen.erdos_renyi(40, m=100, seed=9)
        assert np.array_equal(a.edge_src, b.edge_src)


class TestRMAT:
    def test_size_and_powerlaw(self):
        g = gen.rmat(10, 8, seed=3)
        assert g.n == 1024
        assert 0 < g.num_edges <= 8 * 1024
        # Heavy tail: the max degree should far exceed the average.
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_directed(self):
        g = gen.rmat(8, 4, seed=2, directed=True)
        assert g.directed

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            gen.rmat(5, 4, a=0.8, b=0.3, c=0.3)


class TestPreferentialAttachment:
    def test_ba_edge_count(self):
        g = gen.barabasi_albert(200, 3, seed=4)
        assert g.n == 200
        # (n - m_attach) * m_attach edges added; dedup can only reduce.
        assert g.num_edges <= (200 - 3) * 3
        assert g.num_edges > 0.9 * (200 - 3) * 3

    def test_ba_validation(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(5, 5)

    def test_powerlaw_cluster_triangles(self):
        from repro.algorithms.triangles import count_triangles

        lo = gen.powerlaw_cluster(200, 4, 0.0, seed=5)
        hi = gen.powerlaw_cluster(200, 4, 0.95, seed=5)
        assert count_triangles(hi) > count_triangles(lo)


class TestStructured:
    def test_grid_triangle_free(self):
        from repro.algorithms.triangles import count_triangles

        g = gen.grid_2d(6, 7)
        assert g.n == 42
        assert g.num_edges == 6 * 6 + 5 * 7
        assert count_triangles(g) == 0

    def test_grid_diagonals_have_triangles(self):
        from repro.algorithms.triangles import count_triangles

        g = gen.grid_2d(4, 4, diagonals=True)
        assert count_triangles(g) > 0

    def test_road_network_weighted(self):
        g = gen.road_network(8, 8, seed=1)
        assert g.is_weighted
        assert np.all(g.edge_weights >= 1.0) and np.all(g.edge_weights <= 10.0)

    def test_complete_graph(self):
        g = gen.complete_graph(7)
        assert g.num_edges == 21
        assert np.all(g.degrees == 6)

    def test_star(self):
        g = gen.star_graph(10)
        assert g.degree(0) == 9
        assert np.all(g.degrees[1:] == 1)

    def test_path_cycle(self):
        assert gen.path_graph(5).num_edges == 4
        assert gen.cycle_graph(5).num_edges == 5
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_balanced_tree(self):
        g = gen.balanced_tree(2, 3)
        assert g.n == 15
        assert g.num_edges == 14

    def test_triangle_strip(self):
        from repro.algorithms.triangles import count_triangles

        g = gen.triangle_strip(6)
        assert g.n == 8
        assert count_triangles(g) == 6

    def test_watts_strogatz(self):
        g = gen.watts_strogatz(50, 4, 0.1, seed=2)
        assert g.n == 50
        assert g.num_edges <= 100
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 3, 0.1)

    def test_disjoint_union(self):
        a = gen.path_graph(3)
        b = gen.cycle_graph(4)
        u = gen.disjoint_union(a, b)
        assert u.n == 7
        assert u.num_edges == 2 + 4
        from repro.algorithms.components import connected_components

        assert connected_components(u).num_components == 2

    def test_disjoint_union_weights(self):
        a = gen.path_graph(3).with_weights(np.array([2.0, 3.0]))
        b = gen.path_graph(2)
        u = gen.disjoint_union(a, b)
        assert u.is_weighted
        assert u.total_weight() == 2.0 + 3.0 + 1.0
