"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.generators import _decode_pair_ranks


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = gen.erdos_renyi(50, m=200, seed=0)
        assert g.num_edges == 200
        g.validate()

    def test_p_variant_expectation(self):
        n, p = 200, 0.05
        g = gen.erdos_renyi(n, p=p, seed=1)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 5 * np.sqrt(expected)

    def test_decode_pair_ranks_exhaustive(self):
        for n in (2, 3, 5, 9):
            total = n * (n - 1) // 2
            u, v = _decode_pair_ranks(np.arange(total), n)
            expected = [(a, b) for a in range(n) for b in range(a + 1, n)]
            assert list(zip(u.tolist(), v.tolist())) == expected

    def test_rejects_both_p_and_m(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, p=0.5, m=5)

    def test_rejects_too_many_edges(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(4, m=100)

    def test_deterministic(self):
        a = gen.erdos_renyi(40, m=100, seed=9)
        b = gen.erdos_renyi(40, m=100, seed=9)
        assert np.array_equal(a.edge_src, b.edge_src)


class TestRMAT:
    def test_size_and_powerlaw(self):
        g = gen.rmat(10, 8, seed=3)
        assert g.n == 1024
        assert 0 < g.num_edges <= 8 * 1024
        # Heavy tail: the max degree should far exceed the average.
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_directed(self):
        g = gen.rmat(8, 4, seed=2, directed=True)
        assert g.directed

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            gen.rmat(5, 4, a=0.8, b=0.3, c=0.3)


class TestPreferentialAttachment:
    def test_ba_edge_count(self):
        g = gen.barabasi_albert(200, 3, seed=4)
        assert g.n == 200
        # (n - m_attach) * m_attach edges added; dedup can only reduce.
        assert g.num_edges <= (200 - 3) * 3
        assert g.num_edges > 0.9 * (200 - 3) * 3

    def test_ba_validation(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(5, 5)

    def test_powerlaw_cluster_triangles(self):
        from repro.algorithms.triangles import count_triangles

        lo = gen.powerlaw_cluster(200, 4, 0.0, seed=5)
        hi = gen.powerlaw_cluster(200, 4, 0.95, seed=5)
        assert count_triangles(hi) > count_triangles(lo)


class TestStructured:
    def test_grid_triangle_free(self):
        from repro.algorithms.triangles import count_triangles

        g = gen.grid_2d(6, 7)
        assert g.n == 42
        assert g.num_edges == 6 * 6 + 5 * 7
        assert count_triangles(g) == 0

    def test_grid_diagonals_have_triangles(self):
        from repro.algorithms.triangles import count_triangles

        g = gen.grid_2d(4, 4, diagonals=True)
        assert count_triangles(g) > 0

    def test_road_network_weighted(self):
        g = gen.road_network(8, 8, seed=1)
        assert g.is_weighted
        assert np.all(g.edge_weights >= 1.0) and np.all(g.edge_weights <= 10.0)

    def test_complete_graph(self):
        g = gen.complete_graph(7)
        assert g.num_edges == 21
        assert np.all(g.degrees == 6)

    def test_star(self):
        g = gen.star_graph(10)
        assert g.degree(0) == 9
        assert np.all(g.degrees[1:] == 1)

    def test_path_cycle(self):
        assert gen.path_graph(5).num_edges == 4
        assert gen.cycle_graph(5).num_edges == 5
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_balanced_tree(self):
        g = gen.balanced_tree(2, 3)
        assert g.n == 15
        assert g.num_edges == 14

    def test_triangle_strip(self):
        from repro.algorithms.triangles import count_triangles

        g = gen.triangle_strip(6)
        assert g.n == 8
        assert count_triangles(g) == 6

    def test_watts_strogatz(self):
        g = gen.watts_strogatz(50, 4, 0.1, seed=2)
        assert g.n == 50
        assert g.num_edges <= 100
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 3, 0.1)

    def test_disjoint_union(self):
        a = gen.path_graph(3)
        b = gen.cycle_graph(4)
        u = gen.disjoint_union(a, b)
        assert u.n == 7
        assert u.num_edges == 2 + 4
        from repro.algorithms.components import connected_components

        assert connected_components(u).num_components == 2

    def test_disjoint_union_weights(self):
        a = gen.path_graph(3).with_weights(np.array([2.0, 3.0]))
        b = gen.path_graph(2)
        u = gen.disjoint_union(a, b)
        assert u.is_weighted
        assert u.total_weight() == 2.0 + 3.0 + 1.0


class TestArgumentValidation:
    """Every generator rejects invalid inputs with a ValueError naming the
    offending argument (the PR-5 validation audit)."""

    def test_erdos_renyi_needs_exactly_one_of_p_m(self):
        with pytest.raises(ValueError, match="exactly one of p or m"):
            gen.erdos_renyi(10)
        with pytest.raises(ValueError, match="exactly one of p or m"):
            gen.erdos_renyi(10, p=0.5, m=5)

    def test_erdos_renyi_rejects_negative_m(self):
        with pytest.raises(ValueError, match="m must be >= 0"):
            gen.erdos_renyi(10, m=-1)

    def test_erdos_renyi_rejects_non_integer_m(self):
        with pytest.raises(ValueError, match="m must be an integer, got 2.5"):
            gen.erdos_renyi(10, m=2.5)
        with pytest.raises(ValueError, match="m must be an integer"):
            gen.erdos_renyi(10, m=True)

    def test_erdos_renyi_names_p_and_n(self):
        with pytest.raises(ValueError, match="p must be"):
            gen.erdos_renyi(10, p=1.5)
        with pytest.raises(ValueError, match="n must be"):
            gen.erdos_renyi(0, m=0)

    def test_rmat_names_probabilities(self):
        with pytest.raises(ValueError, match=r"a, b, c .* got a=0.9"):
            gen.rmat(4, 2, a=0.9, b=0.2, c=0.2)
        with pytest.raises(ValueError, match="got a=-0.1"):
            gen.rmat(4, 2, a=-0.1, b=0.5, c=0.5)

    def test_rmat_names_scale_and_edge_factor(self):
        with pytest.raises(ValueError, match="scale must be"):
            gen.rmat(0, 2)
        with pytest.raises(ValueError, match="edge_factor must be"):
            gen.rmat(4, 0)
        with pytest.raises(ValueError, match="scale must be an integer, got 2.5"):
            gen.rmat(2.5, 4)
        with pytest.raises(ValueError, match="edge_factor must be an integer"):
            gen.rmat(4, 2.5)

    def test_barabasi_albert_names_m_attach(self):
        with pytest.raises(ValueError, match="m_attach must be < n, got m_attach=5 with n=5"):
            gen.barabasi_albert(5, 5)
        with pytest.raises(ValueError, match="m_attach must be > 0"):
            gen.barabasi_albert(5, 0)

    def test_powerlaw_cluster_names_arguments(self):
        with pytest.raises(ValueError, match="m_attach must be < n, got m_attach=9 with n=8"):
            gen.powerlaw_cluster(8, 9, 0.5)
        with pytest.raises(ValueError, match="triangle_p must be"):
            gen.powerlaw_cluster(20, 3, 1.5)

    def test_watts_strogatz_names_k(self):
        with pytest.raises(ValueError, match="k must be even.*got k=3"):
            gen.watts_strogatz(10, 3, 0.1)
        with pytest.raises(ValueError, match="0 < k < n, got k=10 with n=10"):
            gen.watts_strogatz(10, 10, 0.1)
        with pytest.raises(ValueError, match="0 < k < n, got k=0"):
            gen.watts_strogatz(10, 0, 0.1)
        with pytest.raises(ValueError, match="beta must be"):
            gen.watts_strogatz(10, 4, -0.1)

    def test_grid_names_rows_cols(self):
        with pytest.raises(ValueError, match="rows must be"):
            gen.grid_2d(0, 5)
        with pytest.raises(ValueError, match="cols must be"):
            gen.grid_2d(5, 0)

    def test_road_network_names_drop_p(self):
        with pytest.raises(ValueError, match="drop_p must be"):
            gen.road_network(4, 4, drop_p=2.0)

    def test_degenerate_family_validation(self):
        with pytest.raises(ValueError, match="n must be"):
            gen.complete_graph(0)
        with pytest.raises(ValueError, match="n must be"):
            gen.star_graph(0)
        with pytest.raises(ValueError, match="n must be"):
            gen.path_graph(-1)
        with pytest.raises(ValueError, match="n must be >= 3 for a cycle, got n=2"):
            gen.cycle_graph(2)
        with pytest.raises(ValueError, match="branching must be"):
            gen.balanced_tree(0, 2)
        with pytest.raises(ValueError, match="height must be >= 0, got height=-1"):
            gen.balanced_tree(2, -1)
        with pytest.raises(ValueError, match="num_triangles must be"):
            gen.triangle_strip(0)

    def test_disjoint_union_rejects_mixed_directedness(self):
        d = gen.rmat(3, 2, seed=0, directed=True)
        with pytest.raises(ValueError, match="directed with undirected"):
            gen.disjoint_union(d, gen.path_graph(3))


def _all_buffers(g):
    out = [g.edge_src, g.edge_dst, g.indptr, g.indices, g.arc_edge_ids]
    if g.is_weighted:
        out.append(g.edge_weights)
    return out


class TestDeterminismProperties:
    """Identical seed => bit-identical CSR buffers, for every seeded
    generator (the contract the fuzz harness's replayable case ids need)."""

    BUILDERS = {
        "erdos_renyi": lambda seed: gen.erdos_renyi(60, m=150, seed=seed),
        "erdos_renyi_p": lambda seed: gen.erdos_renyi(60, p=0.1, seed=seed),
        "rmat": lambda seed: gen.rmat(5, 4, seed=seed),
        "rmat_directed": lambda seed: gen.rmat(5, 4, seed=seed, directed=True),
        "barabasi_albert": lambda seed: gen.barabasi_albert(60, 3, seed=seed),
        "powerlaw_cluster": lambda seed: gen.powerlaw_cluster(60, 3, 0.5, seed=seed),
        "watts_strogatz": lambda seed: gen.watts_strogatz(60, 4, 0.3, seed=seed),
        "road_network": lambda seed: gen.road_network(6, 7, seed=seed),
    }

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_same_seed_bit_identical(self, name):
        build = self.BUILDERS[name]
        a, b = build(17), build(17)
        for buf_a, buf_b in zip(_all_buffers(a), _all_buffers(b)):
            assert np.array_equal(buf_a, buf_b)

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_different_seed_differs(self, name):
        build = self.BUILDERS[name]
        a, b = build(17), build(18)
        same = all(
            np.array_equal(x, y) and len(x) == len(y)
            for x, y in zip(_all_buffers(a), _all_buffers(b))
        ) and a.num_edges == b.num_edges
        assert not same, f"{name} ignored its seed"


class TestStructureProperties:
    def test_powerlaw_cluster_triangles_nondecreasing_in_triangle_p(self):
        """Fixed seed: more triangle-formation steps => more triangles."""
        from repro.algorithms.triangles import count_triangles

        for seed in (0, 7):
            counts = [
                count_triangles(gen.powerlaw_cluster(200, 4, tp, seed=seed))
                for tp in (0.0, 0.5, 1.0)
            ]
            # Coarse checkpoints: the RNG stream diverges between
            # triangle_p values, so fine-grained monotonicity is only
            # statistical; the widely-spaced trend is robust.
            assert counts == sorted(counts), f"seed {seed}: {counts}"
            assert counts[-1] > counts[0]

    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 5), (8, 9)])
    def test_grid_exact_counts(self, rows, cols):
        from repro.algorithms.triangles import count_triangles

        g = gen.grid_2d(rows, cols)
        assert g.n == rows * cols
        assert g.num_edges == rows * (cols - 1) + cols * (rows - 1)
        assert count_triangles(g) == 0

        d = gen.grid_2d(rows, cols, diagonals=True)
        cells = (rows - 1) * (cols - 1)
        assert d.num_edges == g.num_edges + cells
        assert count_triangles(d) == 2 * cells

    @pytest.mark.parametrize("branching,height", [(2, 0), (2, 3), (3, 2), (1, 4)])
    def test_balanced_tree_exact_counts(self, branching, height):
        from repro.algorithms.triangles import count_triangles

        g = gen.balanced_tree(branching, height)
        if branching > 1:
            expected_n = (branching ** (height + 1) - 1) // (branching - 1)
        else:
            expected_n = height + 1
        assert g.n == expected_n
        assert g.num_edges == expected_n - 1
        assert count_triangles(g) == 0

    @pytest.mark.parametrize("t", [1, 2, 5, 9])
    def test_triangle_strip_exact_counts(self, t):
        from repro.algorithms.triangles import count_triangles

        g = gen.triangle_strip(t)
        assert g.n == t + 2
        assert g.num_edges == 2 * t + 1
        assert count_triangles(g) == t
