"""Tests for the content-addressed artifact store, graph fingerprints,
and binary CSR snapshots."""

import json

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.snapshot import SnapshotError, load_snapshot, save_snapshot
from repro.runner.fingerprint import graph_fingerprint
from repro.runner.store import SCHEMA_VERSION, ArtifactStore


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


FP = "f" * 64
PAYLOAD = {"cells": [{"scheme": "uniform(p=0.5)", "value": 0.25}], "perf": {}}


class TestCellKey:
    def test_equal_configs_key_identically(self, store):
        a = store.cell_key(FP, "uniform(p=0.5)", 0, "pagerank(iterations=50)", ["kl"])
        # Aliases and spelling variants resolve to the same canonical key.
        b = store.cell_key(FP, "uniform(0.5)", 0, "pr(iterations=50)", ["kl"])
        assert a == b and a.digest == b.digest

    def test_every_component_discriminates(self, store):
        base = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        variants = [
            store.cell_key("0" * 64, "uniform(p=0.5)", 0, "pr", ["kl"]),
            store.cell_key(FP, "uniform(p=0.4)", 0, "pr", ["kl"]),
            store.cell_key(FP, "uniform(p=0.5)", 1, "pr", ["kl"]),
            store.cell_key(FP, "uniform(p=0.5)", 0, "cc", ["kl"]),
            store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["l2"]),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == len(variants) + 1

    def test_bare_callables_rejected(self, store):
        with pytest.raises(TypeError, match="declarative"):
            store.cell_key(FP, "uniform(p=0.5)", 0, lambda g: 0, [])


class TestStoreRoundTrip:
    def test_miss_then_hit(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        assert store.get_cells(key) is None
        assert key not in store
        store.put_cells(key, PAYLOAD)
        assert key in store
        assert store.get_cells(key) == PAYLOAD
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.writes == 1
        assert len(store) == 1

    def test_arrays_sidecar(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        ranks = np.linspace(0, 1, 7)
        store.put_cells(key, PAYLOAD, arrays={"ranks": ranks})
        loaded = store.load_arrays(key)
        np.testing.assert_array_equal(loaded["ranks"], ranks)
        other = store.cell_key(FP, "uniform(p=0.5)", 1, "pr", ["kl"])
        assert store.load_arrays(other) is None

    def test_truncated_record_is_a_miss(self, store):
        """Atomic-write crash simulation: a half-written record must read
        as a miss (recomputed + overwritten), never as an error."""
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        store.put_cells(key, PAYLOAD)
        path = store._record_path(key)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # crash mid-write
        assert store.get_cells(key) is None
        assert store.stats.corrupt == 1
        # A fresh put over the damage recovers the record.
        store.put_cells(key, PAYLOAD)
        assert store.get_cells(key) == PAYLOAD

    def test_schema_version_mismatch_invalidates(self, tmp_path):
        old = ArtifactStore(tmp_path / "s")
        key = old.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        old.put_cells(key, PAYLOAD)
        newer = ArtifactStore(tmp_path / "s", schema_version=SCHEMA_VERSION + 1)
        assert newer.get_cells(key) is None
        assert newer.stats.invalidated == 1
        # The current-version store still reads its own record.
        assert ArtifactStore(tmp_path / "s").get_cells(key) == PAYLOAD

    def test_foreign_json_is_a_miss(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        path = store._record_path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(["not", "a", "record"]))
        assert store.get_cells(key) is None

    def test_no_temp_files_left_behind(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        store.put_cells(key, PAYLOAD, arrays={"x": np.arange(3)})
        leftovers = list(store.root.rglob("*.tmp"))
        assert leftovers == []


class TestGraphSnapshots:
    def _assert_same_graph(self, a, b):
        assert a.n == b.n and a.directed == b.directed
        np.testing.assert_array_equal(a.edge_src, b.edge_src)
        np.testing.assert_array_equal(a.edge_dst, b.edge_dst)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.arc_edge_ids, b.arc_edge_ids)
        if a.edge_weights is None:
            assert b.edge_weights is None
        else:
            np.testing.assert_array_equal(a.edge_weights, b.edge_weights)

    def test_snapshot_round_trip(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        loaded = load_snapshot(path)
        self._assert_same_graph(plc300, loaded)
        loaded.validate()

    def test_snapshot_round_trip_weighted_directed(self, tmp_path):
        g = gen.rmat(6, 4, seed=3, directed=True)
        from repro.graphs.weights import with_uniform_weights

        g = with_uniform_weights(g, 1.0, 5.0, seed=1)
        loaded = load_snapshot(save_snapshot(g, tmp_path / "g.npz"))
        self._assert_same_graph(g, loaded)

    def test_damaged_snapshot_raises_snapshot_error(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(SnapshotError):
            load_snapshot(path)
        (tmp_path / "not-npz.npz").write_text("hello")
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "not-npz.npz")

    def test_add_graph_rewrites_damaged_snapshot(self, store, plc300):
        fp, path = store.add_graph(plc300)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # disk damage
        fp2, path2 = store.add_graph(plc300)
        assert (fp2, path2) == (fp, path)
        # The damaged file was replaced, not handed to workers as-is.
        self._assert_same_graph(plc300, load_snapshot(path2))

    def test_store_graph_round_trip(self, store, plc300):
        fp, path = store.add_graph(plc300)
        assert fp == graph_fingerprint(plc300)
        assert store.graph_path(fp) == path
        self._assert_same_graph(plc300, store.load_graph(fp))
        # Idempotent: a second add reuses the snapshot.
        assert store.add_graph(plc300) == (fp, path)
        assert store.load_graph("0" * 64) is None


class TestExplodedSnapshots:
    """The v2 (directory) layout: mmap-ability, atomicity, damage names."""

    def _assert_same_graph(self, a, b):
        TestGraphSnapshots._assert_same_graph(self, a, b)

    def test_round_trip(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.snap", layout="exploded")
        assert (path / "header.json").exists()
        loaded = load_snapshot(path)
        self._assert_same_graph(plc300, loaded)
        loaded.validate()

    def test_mmap_round_trip(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.snap", layout="exploded")
        loaded = load_snapshot(path, mmap=True)
        self._assert_same_graph(plc300, loaded)
        # mmap-backed and read-only: the paging win without the footgun.
        assert not loaded.edge_src.flags.writeable
        with pytest.raises(ValueError):
            loaded.edge_src[0] = 99

    def test_v1_arrays_are_read_only_too(self, plc300, tmp_path):
        loaded = load_snapshot(save_snapshot(plc300, tmp_path / "g.npz"))
        assert not loaded.edge_src.flags.writeable
        assert not loaded.indices.flags.writeable
        with pytest.raises(ValueError):
            loaded.indptr[0] = 1

    def test_mmap_of_v1_npz_refused(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        with pytest.raises(SnapshotError, match="exploded"):
            load_snapshot(path, mmap=True)

    def test_missing_header_is_damage(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.snap", layout="exploded")
        (path / "header.json").unlink()
        with pytest.raises(SnapshotError, match="not a CSR snapshot"):
            load_snapshot(path)

    def test_mixed_generation_sidecar_is_damage(self, plc300, tmp_path):
        # A sidecar disagreeing with the header (e.g. a crash between two
        # overwrites) must be named, not silently assembled.
        path = save_snapshot(plc300, tmp_path / "g.snap", layout="exploded")
        np.save(path / "indptr.npy", np.zeros(3, dtype=np.int64))
        with pytest.raises(SnapshotError, match="indptr"):
            load_snapshot(path)

    def test_future_version_refused(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.snap", layout="exploded")
        header = json.loads((path / "header.json").read_text())
        header["version"] = 99
        (path / "header.json").write_text(json.dumps(header))
        with pytest.raises(SnapshotError, match="version 99"):
            load_snapshot(path)

    def test_unknown_layout_rejected(self, plc300, tmp_path):
        with pytest.raises(ValueError, match="layout"):
            save_snapshot(plc300, tmp_path / "g", layout="imploded")

    def test_add_graph_exploded_idempotent(self, store, plc300):
        fp, path = store.add_graph_exploded(plc300)
        assert fp == graph_fingerprint(plc300)
        assert path.is_dir()
        assert store.add_graph_exploded(plc300) == (fp, path)
        self._assert_same_graph(plc300, load_snapshot(path, mmap=True))

    def test_add_graph_exploded_rewrites_damage(self, store, plc300):
        fp, path = store.add_graph_exploded(plc300)
        (path / "header.json").write_text("{ torn")
        fp2, path2 = store.add_graph_exploded(plc300)
        assert (fp2, path2) == (fp, path)
        self._assert_same_graph(plc300, load_snapshot(path2))


class TestSnapshotValidation:
    """Cross-field consistency: damage is named, never deferred to kernels."""

    def _parts(self, g, **overrides):
        parts = {
            "edge_src": g.edge_src,
            "edge_dst": g.edge_dst,
            "indptr": g.indptr,
            "indices": g.indices,
            "arc_edge_ids": g.arc_edge_ids,
            "edge_weights": g.edge_weights,
        }
        parts.update(overrides)
        return parts

    def test_well_formed_passes(self, plc300):
        from repro.graphs.snapshot import validate_parts

        validate_parts(plc300.n, plc300.directed, self._parts(plc300))

    @pytest.mark.parametrize(
        "field,value_fn,match",
        [
            ("edge_src", lambda g: None, "edge_src.*missing"),
            ("edge_dst", lambda g: g.edge_dst[:-1], "edge_dst.*length"),
            ("indptr", lambda g: g.indptr[:-2], "indptr.*length"),
            ("indices", lambda g: g.indices[:-3], "indices.*length"),
            (
                "arc_edge_ids",
                lambda g: g.arc_edge_ids[:-1],
                "arc_edge_ids.*length",
            ),
            (
                "edge_src",
                lambda g: g.edge_src.astype(np.int32),
                "edge_src.*dtype",
            ),
            (
                "indices",
                lambda g: g.indices.reshape(1, -1),
                "indices.*1-D",
            ),
            (
                "edge_weights",
                lambda g: np.ones(3),
                "edge_weights.*length",
            ),
        ],
    )
    def test_each_offending_field_is_named(self, plc300, field, value_fn, match):
        from repro.graphs.snapshot import validate_parts

        parts = self._parts(plc300, **{field: value_fn(plc300)})
        with pytest.raises(SnapshotError, match=match):
            validate_parts(plc300.n, plc300.directed, parts)

    def test_indptr_endpoints_checked(self, plc300):
        from repro.graphs.snapshot import validate_parts

        bad = plc300.indptr.copy()
        bad[-1] += 7
        with pytest.raises(SnapshotError, match="indptr.*ends at"):
            validate_parts(
                plc300.n, plc300.directed, self._parts(plc300, indptr=bad)
            )

    def test_loader_applies_validation(self, plc300, tmp_path):
        # End to end: a structurally inconsistent exploded snapshot whose
        # header matches its sidecars still fails, naming the field.
        path = save_snapshot(plc300, tmp_path / "g.snap", layout="exploded")
        short = np.asarray(plc300.indptr[:-2])
        np.save(path / "indptr.npy", short)
        header = json.loads((path / "header.json").read_text())
        header["arrays"]["indptr"]["shape"] = list(short.shape)
        (path / "header.json").write_text(json.dumps(header))
        with pytest.raises(SnapshotError, match="indptr"):
            load_snapshot(path)


class TestFingerprint:
    def test_content_not_identity(self, plc300):
        twin = gen.powerlaw_cluster(300, 5, 0.7, seed=7)
        assert twin is not plc300
        assert graph_fingerprint(twin) == graph_fingerprint(plc300)

    def test_sensitive_to_structure_weights_direction(self, er300, weighted300):
        fps = {
            graph_fingerprint(er300),
            graph_fingerprint(weighted300),
            graph_fingerprint(gen.erdos_renyi(300, m=900, seed=12)),
            graph_fingerprint(er300.keep_edges(np.arange(er300.num_edges) > 0)),
        }
        assert len(fps) == 4

    def test_snapshot_preserves_fingerprint(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        assert graph_fingerprint(load_snapshot(path)) == graph_fingerprint(plc300)
