"""Tests for the content-addressed artifact store, graph fingerprints,
and binary CSR snapshots."""

import json

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.snapshot import SnapshotError, load_snapshot, save_snapshot
from repro.runner.fingerprint import graph_fingerprint
from repro.runner.store import SCHEMA_VERSION, ArtifactStore


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


FP = "f" * 64
PAYLOAD = {"cells": [{"scheme": "uniform(p=0.5)", "value": 0.25}], "perf": {}}


class TestCellKey:
    def test_equal_configs_key_identically(self, store):
        a = store.cell_key(FP, "uniform(p=0.5)", 0, "pagerank(iterations=50)", ["kl"])
        # Aliases and spelling variants resolve to the same canonical key.
        b = store.cell_key(FP, "uniform(0.5)", 0, "pr(iterations=50)", ["kl"])
        assert a == b and a.digest == b.digest

    def test_every_component_discriminates(self, store):
        base = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        variants = [
            store.cell_key("0" * 64, "uniform(p=0.5)", 0, "pr", ["kl"]),
            store.cell_key(FP, "uniform(p=0.4)", 0, "pr", ["kl"]),
            store.cell_key(FP, "uniform(p=0.5)", 1, "pr", ["kl"]),
            store.cell_key(FP, "uniform(p=0.5)", 0, "cc", ["kl"]),
            store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["l2"]),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == len(variants) + 1

    def test_bare_callables_rejected(self, store):
        with pytest.raises(TypeError, match="declarative"):
            store.cell_key(FP, "uniform(p=0.5)", 0, lambda g: 0, [])


class TestStoreRoundTrip:
    def test_miss_then_hit(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        assert store.get_cells(key) is None
        assert key not in store
        store.put_cells(key, PAYLOAD)
        assert key in store
        assert store.get_cells(key) == PAYLOAD
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.writes == 1
        assert len(store) == 1

    def test_arrays_sidecar(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        ranks = np.linspace(0, 1, 7)
        store.put_cells(key, PAYLOAD, arrays={"ranks": ranks})
        loaded = store.load_arrays(key)
        np.testing.assert_array_equal(loaded["ranks"], ranks)
        other = store.cell_key(FP, "uniform(p=0.5)", 1, "pr", ["kl"])
        assert store.load_arrays(other) is None

    def test_truncated_record_is_a_miss(self, store):
        """Atomic-write crash simulation: a half-written record must read
        as a miss (recomputed + overwritten), never as an error."""
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        store.put_cells(key, PAYLOAD)
        path = store._record_path(key)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # crash mid-write
        assert store.get_cells(key) is None
        assert store.stats.corrupt == 1
        # A fresh put over the damage recovers the record.
        store.put_cells(key, PAYLOAD)
        assert store.get_cells(key) == PAYLOAD

    def test_schema_version_mismatch_invalidates(self, tmp_path):
        old = ArtifactStore(tmp_path / "s")
        key = old.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        old.put_cells(key, PAYLOAD)
        newer = ArtifactStore(tmp_path / "s", schema_version=SCHEMA_VERSION + 1)
        assert newer.get_cells(key) is None
        assert newer.stats.invalidated == 1
        # The current-version store still reads its own record.
        assert ArtifactStore(tmp_path / "s").get_cells(key) == PAYLOAD

    def test_foreign_json_is_a_miss(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        path = store._record_path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(["not", "a", "record"]))
        assert store.get_cells(key) is None

    def test_no_temp_files_left_behind(self, store):
        key = store.cell_key(FP, "uniform(p=0.5)", 0, "pr", ["kl"])
        store.put_cells(key, PAYLOAD, arrays={"x": np.arange(3)})
        leftovers = list(store.root.rglob("*.tmp"))
        assert leftovers == []


class TestGraphSnapshots:
    def _assert_same_graph(self, a, b):
        assert a.n == b.n and a.directed == b.directed
        np.testing.assert_array_equal(a.edge_src, b.edge_src)
        np.testing.assert_array_equal(a.edge_dst, b.edge_dst)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.arc_edge_ids, b.arc_edge_ids)
        if a.edge_weights is None:
            assert b.edge_weights is None
        else:
            np.testing.assert_array_equal(a.edge_weights, b.edge_weights)

    def test_snapshot_round_trip(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        loaded = load_snapshot(path)
        self._assert_same_graph(plc300, loaded)
        loaded.validate()

    def test_snapshot_round_trip_weighted_directed(self, tmp_path):
        g = gen.rmat(6, 4, seed=3, directed=True)
        from repro.graphs.weights import with_uniform_weights

        g = with_uniform_weights(g, 1.0, 5.0, seed=1)
        loaded = load_snapshot(save_snapshot(g, tmp_path / "g.npz"))
        self._assert_same_graph(g, loaded)

    def test_damaged_snapshot_raises_snapshot_error(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(SnapshotError):
            load_snapshot(path)
        (tmp_path / "not-npz.npz").write_text("hello")
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "not-npz.npz")

    def test_add_graph_rewrites_damaged_snapshot(self, store, plc300):
        fp, path = store.add_graph(plc300)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # disk damage
        fp2, path2 = store.add_graph(plc300)
        assert (fp2, path2) == (fp, path)
        # The damaged file was replaced, not handed to workers as-is.
        self._assert_same_graph(plc300, load_snapshot(path2))

    def test_store_graph_round_trip(self, store, plc300):
        fp, path = store.add_graph(plc300)
        assert fp == graph_fingerprint(plc300)
        assert store.graph_path(fp) == path
        self._assert_same_graph(plc300, store.load_graph(fp))
        # Idempotent: a second add reuses the snapshot.
        assert store.add_graph(plc300) == (fp, path)
        assert store.load_graph("0" * 64) is None


class TestFingerprint:
    def test_content_not_identity(self, plc300):
        twin = gen.powerlaw_cluster(300, 5, 0.7, seed=7)
        assert twin is not plc300
        assert graph_fingerprint(twin) == graph_fingerprint(plc300)

    def test_sensitive_to_structure_weights_direction(self, er300, weighted300):
        fps = {
            graph_fingerprint(er300),
            graph_fingerprint(weighted300),
            graph_fingerprint(gen.erdos_renyi(300, m=900, seed=12)),
            graph_fingerprint(er300.keep_edges(np.arange(er300.num_edges) > 0)),
        }
        assert len(fps) == 4

    def test_snapshot_preserves_fingerprint(self, plc300, tmp_path):
        path = save_snapshot(plc300, tmp_path / "g.npz")
        assert graph_fingerprint(load_snapshot(path)) == graph_fingerprint(plc300)
