"""Tests for the deterministic fuzz driver: case ids, determinism, the
smoke matrix, replayable failure artifacts, and the CLI."""

import dataclasses
import json

import numpy as np
import pytest

from repro.graphs.snapshot import load_snapshot
from repro.verify import fuzz
from repro.verify.fuzz import FAMILIES, FuzzCase, build_cases, build_graph
from repro.verify.oracles import ORACLES, oracle_triangle_count


class TestCaseIds:
    def test_round_trip_every_axis(self):
        for case in build_cases(seeds=(0, 13)):
            assert FuzzCase.from_id(case.case_id) == case

    @pytest.mark.parametrize(
        "bad",
        ["bogus", "rmat.und.unw", "nope.und.unw.s0", "rmat.sideways.unw.s0",
         "rmat.und.unw.x0", "rmat.und.unw.s0.extra", "rmat.und.unw.s-1"],
    )
    def test_malformed_ids_rejected(self, bad):
        with pytest.raises(ValueError, match="malformed case id|unknown family"):
            FuzzCase.from_id(bad)

    def test_negative_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds must be >= 0"):
            build_cases(seeds=(0, -1))

    def test_family_floor(self):
        """The acceptance floor: at least 6 generator families."""
        assert len(FAMILIES) >= 6

    def test_matrix_shape(self):
        cases = build_cases(seeds=(0, 1, 2))
        assert len(cases) == len(FAMILIES) * 2 * 2 * 3
        assert len({c.case_id for c in cases}) == len(cases)


class TestGraphBuilding:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_deterministic_rebuild(self, family):
        case = FuzzCase(family, directed=False, weighted=True, seed=1)
        a, b = build_graph(case), build_graph(case)
        assert np.array_equal(a.edge_src, b.edge_src)
        assert np.array_equal(a.edge_dst, b.edge_dst)
        assert np.array_equal(a.edge_weights, b.edge_weights)

    def test_axes_apply(self):
        und = build_graph(FuzzCase("erdos_renyi", False, False, 0))
        dir_ = build_graph(FuzzCase("erdos_renyi", True, False, 0))
        wtd = build_graph(FuzzCase("erdos_renyi", False, True, 0))
        assert not und.directed and dir_.directed
        # Asymmetric orientation: strictly between one and two arcs per
        # undirected edge, with at least one genuinely one-way edge.
        assert und.num_edges < dir_.num_edges < 2 * und.num_edges
        one_way = [
            (int(u), int(v))
            for u, v in zip(dir_.edge_src[:200], dir_.edge_dst[:200])
            if not dir_.has_edge(int(v), int(u))
        ]
        assert one_way, "directed variant is fully symmetric"
        assert wtd.is_weighted and not und.is_weighted

    def test_directed_variant_has_dangling_vertices(self):
        """PageRank's dangling-mass path must be live in the matrix."""
        for seed in (0, 1, 2):
            g = build_graph(FuzzCase("erdos_renyi", True, False, seed))
            dangling = (g.degrees == 0) & (g.in_degrees > 0)
            if dangling.any():
                return
        raise AssertionError("no dangling vertex in any smoke seed")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            build_cases(families=["nope"])


class TestChainClassification:
    def test_weight_preserving_pipeline(self):
        assert fuzz._classify("chain", "uniform(p=0.9) | spanner(k=4)") == (True, True)

    def test_tr_label_stage_resolves(self):
        assert fuzz._classify(
            "chain", "EO-0.5-1-TR | low_degree(max_degree=1)"
        ) == (True, True)

    def test_reweighting_stage_drops_weight_check(self):
        assert fuzz._classify("chain", "spectral(p=0.5) | uniform(p=0.9)") == (True, False)

    def test_non_subgraph_stage_drops_subset_check(self):
        assert fuzz._classify(
            "chain", "uniform(p=0.9) | summarization(epsilon=0.2)"
        ) == (False, False)


class TestRunCase:
    def test_undirected_case_runs_everything(self):
        report = fuzz.run_case(FuzzCase("degenerate", False, False, 0))
        assert report.ok
        assert report.checks > len(ORACLES)  # oracles + scheme invariants

    def test_directed_case_skips_undirected_oracles(self):
        report = fuzz.run_case(
            FuzzCase("degenerate", True, False, 0), schemes=False
        )
        assert report.ok
        directed_entries = [e for e in ORACLES.values() if e.directed_ok]
        assert report.checks == len(directed_entries) + 1  # + snapshot check

    def test_property_crash_becomes_failure(self, monkeypatch):
        """A crashing metamorphic check is recorded, not propagated —
        otherwise the matrix would abort with no replay artifact."""
        from repro.verify import properties

        def boom(*args, **kwargs):
            raise IndexError("kaput")

        monkeypatch.setattr(properties, "fastpath_identity", boom)
        monkeypatch.setattr(properties, "snapshot_roundtrip", boom)
        report = fuzz.run_case(FuzzCase("degenerate", False, False, 0))
        assert not report.ok
        assert any(
            "fastpath_identity: raised IndexError" in m for m in report.failures
        )
        assert any(
            "snapshot_roundtrip: raised IndexError" in m for m in report.failures
        )

    def test_oracle_exception_becomes_failure(self):
        table = {
            "boom": dataclasses.replace(
                ORACLES["cc"], name="boom",
                oracle=lambda g: (_ for _ in ()).throw(RuntimeError("kaput")),
            )
        }
        report = fuzz.run_case(
            FuzzCase("degenerate", False, False, 0),
            oracle_table=table, schemes=False,
        )
        assert not report.ok
        assert "raised RuntimeError" in report.failures[0]


class TestBrokenOracleReplay:
    """The acceptance sanity check: a deliberately-broken oracle must
    produce a failing case with a replayable artifact and command."""

    @pytest.fixture
    def broken_table(self):
        table = dict(ORACLES)
        table["tc"] = dataclasses.replace(
            table["tc"],
            oracle=lambda g: float(oracle_triangle_count(g) + 1),
        )
        return table

    def test_failure_artifact_and_replay_command(self, broken_table, tmp_path):
        cases = build_cases(
            seeds=(0,), families=["powerlaw_cluster"],
            directed=(False,), weighted=(False,),
        )
        summary = fuzz.run_matrix(
            cases, oracle_table=broken_table, schemes=False,
            global_checks=False, artifacts=tmp_path, log=lambda *_: None,
        )
        assert not summary.ok
        (report,) = summary.failing
        case_id = report.case.case_id

        # The replay command is minimal and addresses the exact case.
        assert fuzz.replay_command(report.case) == (
            f"python -m repro.verify replay --case {case_id}"
        )

        # The NPZ artifact is a loadable snapshot of the offending graph.
        snap = load_snapshot(tmp_path / f"{case_id}.npz")
        g = build_graph(report.case)
        assert np.array_equal(snap.edge_src, g.edge_src)

        record = json.loads((tmp_path / f"{case_id}.json").read_text())
        assert record["replay"].endswith(case_id)
        assert record["failures"]

        # The perf record reflects the table that actually ran.
        assert summary.perf()["oracles"] == len(broken_table)

    def test_global_failure_writes_record(self, tmp_path, monkeypatch):
        from repro.verify import properties

        monkeypatch.setattr(
            properties, "store_roundtrip", lambda *a, **k: ["forged failure"]
        )
        monkeypatch.setattr(
            properties, "parallel_grid_equivalence", lambda *a, **k: []
        )
        summary = fuzz.run_matrix(
            [], global_checks=True, artifacts=tmp_path, log=lambda *_: None
        )
        assert not summary.ok
        record = json.loads((tmp_path / "global.json").read_text())
        assert record["failures"] == ["store_roundtrip: forged failure"]

    def test_replay_reproduces_then_clears(self, broken_table):
        case = FuzzCase("powerlaw_cluster", False, False, 0)
        broken = fuzz.run_case(case, oracle_table=broken_table, schemes=False)
        assert not broken.ok
        # The same case id against the real table passes: the failure was
        # the oracle's, not the engine's.
        assert fuzz.run_case(case, schemes=False).ok


class TestCLI:
    def test_list_cases(self, capsys):
        assert fuzz.main(["--list-cases", "--seeds", "0", "--families", "rmat"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "rmat.und.unw.s0" in out and len(out) == 4

    def test_smoke_subset_passes(self, capsys, tmp_path):
        code = fuzz.main(
            ["--seeds", "0", "--families", "degenerate", "--no-global",
             "--artifacts", str(tmp_path)]
        )
        assert code == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_replay_ok(self, capsys, tmp_path):
        code = fuzz.main(
            ["replay", "--case", "degenerate.und.unw.s0",
             "--artifacts", str(tmp_path)]
        )
        assert code == 0
        assert "ok: degenerate.und.unw.s0" in capsys.readouterr().out

    def test_replay_malformed_id(self, capsys):
        assert fuzz.main(["replay", "--case", "bogus"]) == 2
        assert "malformed case id" in capsys.readouterr().err

    def test_run_bad_inputs_exit_cleanly(self, capsys):
        assert fuzz.main(["--seeds", "-1"]) == 2
        assert "seeds must be >= 0" in capsys.readouterr().err
        assert fuzz.main(["--families", "nope"]) == 2
        assert "unknown families" in capsys.readouterr().err

    def test_perf_record(self, tmp_path, capsys):
        code = fuzz.main(
            ["--seeds", "0", "--families", "grid_2d", "--no-schemes",
             "--no-global", "--out", str(tmp_path)]
        )
        assert code == 0
        record = json.loads((tmp_path / "BENCH_verify.json").read_text())
        assert record["sweep"] == "verify"
        assert record["cases"] == 4
        assert record["failing_cases"] == []
        assert record["oracles"] >= 8
