"""Tests for the transport-neutral job model (`repro.service.jobs`):
canonical JSON identity, round-trips, and the shared scheduler."""

import json

import pytest

from repro.graphs import generators as gen
from repro.runner.store import ArtifactStore
from repro.service.jobs import (
    FINGERPRINT_PREFIX,
    JobSpec,
    execute_job,
    load_job_graph,
)


@pytest.fixture
def graph():
    return gen.powerlaw_cluster(150, 4, 0.5, seed=3)


@pytest.fixture
def loader(graph):
    return lambda ref: graph


def _job(**overrides) -> JobSpec:
    base = dict(
        graph="g",
        schemes=["uniform(p=0.5)", "spanner(k=4)"],
        algorithms=["pr", "cc"],
        seeds=[0, 1],
    )
    base.update(overrides)
    return JobSpec.build(**base)


class TestIdentity:
    def test_spelling_variants_share_one_key(self):
        a = _job(schemes=["uniform(0.5)"], algorithms=["pr"])
        b = _job(schemes=["uniform(p=0.5)"], algorithms=["pagerank"])
        assert a.job_key == b.job_key

    def test_metric_order_and_aliases_are_canonical(self):
        a = _job(metrics=["l2", "kl"])
        b = _job(metrics=["kl_divergence", "l2_distance"])
        # Normalized at build time (the satellite requirement: JobSpec
        # JSON itself is metric-order-free, not just the hash).
        assert a.metrics == b.metrics == ("kl_divergence", "l2_distance")
        assert a.job_key == b.job_key

    def test_seed_order_and_duplicates_do_not_split_jobs(self):
        assert _job(seeds=[1, 0, 1]).job_key == _job(seeds=[0, 1]).job_key

    def test_every_axis_discriminates(self):
        base = _job()
        variants = [
            _job(graph="h"),
            _job(schemes=["uniform(p=0.4)", "spanner(k=4)"]),
            _job(algorithms=["pr"]),
            _job(metrics=["kl"]),
            _job(seeds=[2]),
            _job(graph_seed=1),
            _job(pr_iterations=50),
        ]
        keys = {base.job_key} | {v.job_key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_session_defaults_fold_into_identity(self):
        # bfs_root only matters to algorithms that take a source; pinning
        # the source explicitly equals relying on the default.
        a = _job(algorithms=["bfs_reach"], bfs_root=3)
        b = _job(algorithms=["bfs_reach(source=3)"])
        assert a.job_key == b.job_key
        assert a.job_key != _job(algorithms=["bfs_reach"], bfs_root=0).job_key
        # ...but is irrelevant (same key) for source-free algorithms.
        assert _job(bfs_root=3).job_key == _job().job_key

    def test_pr_iterations_fold_into_identity(self):
        assert (
            _job(algorithms=["pagerank(max_iterations=100)"]).job_key
            == _job(algorithms=["pr"], pr_iterations=100).job_key
        )


class TestTransport:
    def test_json_round_trip(self):
        job = _job(metrics=["kl", "l2"], pr_iterations=42)
        clone = JobSpec.from_json(job.to_json())
        assert clone == job
        assert clone.job_key == job.job_key

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields.*'shcemes'"):
            JobSpec.from_dict({"graph": "g", "schemes": ["x"], "shcemes": []})

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match="'graph' and 'schemes'"):
            JobSpec.from_dict({"schemes": ["uniform(p=0.5)"]})
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "mapping"])

    def test_bad_specs_fail_at_build_time(self):
        with pytest.raises(Exception):
            _job(schemes=["no_such_scheme(p=0.5)"])
        with pytest.raises(Exception):
            _job(algorithms=["no_such_algorithm"])
        with pytest.raises(ValueError, match="at least one scheme"):
            _job(schemes=[])
        with pytest.raises(ValueError, match="at least one seed"):
            _job(seeds=[])

    def test_from_sweep_matches_harness_axes(self):
        from repro.runner.harness import get_sweep

        sweep = get_sweep("smoke")
        job = JobSpec.from_sweep(sweep, sweep.graphs[0])
        assert job.graph == sweep.graphs[0]
        assert job.schemes == sweep.schemes
        assert job.seeds == sweep.seeds
        assert job.cell_groups() == (
            len(sweep.schemes) * len(sweep.algorithms) * len(sweep.seeds)
        )


class TestExecution:
    def test_execute_matches_in_memory_session_grid(self, graph, loader):
        from repro.analytics.session import Session

        job = _job()
        result = execute_job(job, graph_loader=loader)
        expected = []
        session = Session(graph, seed=0)
        for seed in job.seeds:
            expected.extend(
                session.grid(job.schemes, job.algorithms, seed=seed)
            )
        got = [
            (c.scheme, c.algorithm, c.metric, c.seed, c.value, c.compression_ratio)
            for c in result.table
        ]
        want = [
            (c.scheme, c.algorithm, c.metric, c.seed, c.value, c.compression_ratio)
            for c in expected
        ]
        assert got == want
        assert all(c.graph == "g" for c in result.table)
        assert result.perf["cells_scheduled"] == job.cell_groups()
        assert result.perf["job_key"] == job.job_key

    def test_store_replay_is_zero_recompute(self, loader, tmp_path):
        job = _job()
        cold = execute_job(job, store=tmp_path / "store", graph_loader=loader)
        warm = execute_job(job, store=tmp_path / "store", graph_loader=loader)
        assert cold.perf["cache_misses"] == job.cell_groups()
        assert warm.perf["cache_misses"] == 0
        assert warm.perf["cache_hits"] == job.cell_groups()
        assert warm.table.to_dict() == cold.table.to_dict()

    def test_fingerprint_graph_reference(self, graph, tmp_path):
        from repro.runner.fingerprint import graph_fingerprint

        store = ArtifactStore(tmp_path / "store")
        fingerprint, _ = store.add_graph(graph)
        job = _job(graph=f"{FINGERPRINT_PREFIX}{fingerprint}")
        loaded = load_job_graph(job, store=store)
        assert graph_fingerprint(loaded) == fingerprint
        result = execute_job(job, store=store)
        assert len(result.table) == job.cell_groups()

    def test_fingerprint_reference_needs_a_store(self):
        job = _job(graph=f"{FINGERPRINT_PREFIX}{'a' * 64}")
        with pytest.raises(ValueError, match="needs a store"):
            load_job_graph(job)

    def test_unknown_snapshot_named_in_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        job = _job(graph=f"{FINGERPRINT_PREFIX}{'a' * 64}")
        with pytest.raises(ValueError, match="no snapshot"):
            load_job_graph(job, store=store)
