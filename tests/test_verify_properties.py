"""Tests for the metamorphic compression invariants."""

import numpy as np
import pytest

from repro.compress.base import CompressionResult, StageRecord
from repro.compress.mappings import relabel_mapping
from repro.compress.registry import build_scheme, registered_schemes
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.graphs.weights import with_uniform_weights
from repro.verify import properties


@pytest.fixture
def plc_weighted(plc300):
    return with_uniform_weights(plc300, seed=4)


class TestSubgraphInvariants:
    def test_scheme_sets_cover_the_registry(self):
        """Every registered scheme is classified (subgraph or not), so a
        new scheme cannot silently skip the fuzz matrix's strictest check."""
        known = properties.SUBGRAPH_SCHEMES | {"summarization", "lowrank"}
        assert set(registered_schemes()) <= known
        assert properties.WEIGHT_PRESERVING_SCHEMES <= properties.SUBGRAPH_SCHEMES

    @pytest.mark.parametrize(
        "spec",
        [
            "uniform(p=0.5)",
            "spanner(k=4)",
            "EO-0.8-1-TR",
            "vertex_sampling(p=0.7)",
            "low_degree(max_degree=1)",
            "random_walk_sampling(target_fraction=0.5)",
        ],
    )
    def test_weight_preserving_schemes_pass(self, plc_weighted, spec):
        result = build_scheme(spec).compress(plc_weighted, seed=0)
        assert properties.subgraph_invariants(result) == []

    @pytest.mark.parametrize("spec", ["spectral(p=0.2)", "cut_sparsifier(epsilon=0.5)"])
    def test_reweighting_schemes_pass_endpoint_subset(self, plc_weighted, spec):
        result = build_scheme(spec).compress(plc_weighted, seed=0)
        assert properties.subgraph_invariants(result, weights_preserved=False) == []

    def test_foreign_edge_is_flagged(self, plc300):
        # Forge a "compression" that invents an edge not in the original.
        n = plc300.n
        fake = CSRGraph.from_edges(n, [0], [n - 1])
        if plc300.has_edge(0, n - 1):
            pytest.skip("fixture happens to contain the forged edge")
        result = CompressionResult(
            graph=fake, original=plc300, scheme="uniform", params={"p": 0.5}
        )
        msgs = properties.subgraph_invariants(result)
        assert any("do not exist in the original" in m for m in msgs)

    def test_changed_weight_is_flagged(self, plc_weighted):
        doubled = plc_weighted.with_weights(plc_weighted.edge_weights * 2.0)
        result = CompressionResult(
            graph=doubled, original=plc_weighted, scheme="uniform", params={}
        )
        msgs = properties.subgraph_invariants(result)
        assert any("weight of surviving edge" in m for m in msgs)
        assert properties.subgraph_invariants(result, weights_preserved=False) == []

    def test_vertex_change_needs_alignment(self, plc300):
        shrunk = plc300.remove_vertices([0, 1], relabel=True)
        bare = CompressionResult(
            graph=shrunk, original=plc300, scheme="vertex_sampling", params={}
        )
        msgs = properties.subgraph_invariants(bare)
        assert any("no alignment" in m for m in msgs)

        with_mapping = CompressionResult(
            graph=shrunk,
            original=plc300,
            scheme="vertex_sampling",
            params={},
            extras={"mapping": relabel_mapping(plc300.n, [0, 1])},
        )
        assert properties.subgraph_invariants(with_mapping) == []

    def test_vertex_change_still_checks_monotone_counts(self):
        """Relabeling must not disable the count-only bounds: a forged
        n-changing 'compression' that grows m is flagged."""
        sparse = gen.path_graph(6)
        dense = gen.complete_graph(5)  # n=5 < 6 but m=10 > 5
        result = CompressionResult(
            graph=dense,
            original=sparse,
            scheme="vertex_sampling",
            params={},
            extras={"mapping": relabel_mapping(6, [5])},
        )
        msgs = properties.subgraph_invariants(result)
        assert any("m never increases" in m for m in msgs)
        assert any("max degree never increases" in m for m in msgs)


class TestLineage:
    def test_chain_lineage_composes(self, plc300):
        result = build_scheme("uniform(p=0.9) | spanner(k=4)").compress(plc300, seed=1)
        assert properties.lineage_composes(result) == []
        assert len(result.lineage) == 2

    def test_single_stage_lineage(self, plc300):
        result = build_scheme("uniform(p=0.5)").compress(plc300, seed=1)
        assert properties.lineage_composes(result) == []

    def test_broken_lineage_is_flagged(self, plc300):
        sub = plc300.keep_edges(np.arange(plc300.num_edges) % 2 == 0)
        bad = StageRecord(
            scheme="uniform", params={}, vertices_in=plc300.n,
            vertices_out=plc300.n, edges_in=123, edges_out=456,
        )
        result = CompressionResult(
            graph=sub, original=plc300, scheme="uniform", params={}, lineage=(bad,),
        )
        msgs = properties.lineage_composes(result)
        assert any("starts at m=123" in m for m in msgs)
        assert any("ends at m=456" in m for m in msgs)


class TestPipelineInvariants:
    def test_tr_preserves_components(self, plc300):
        assert properties.tr_preserves_components(plc300, seed=0) == []

    def test_spanner_invariants(self, plc300):
        assert properties.spanner_invariants(plc300, k=4, seed=0) == []

    def test_spanner_stretch_violation_detected(self, monkeypatch):
        """Sanity: a fake 'spanner' that opens a long cycle must trip the
        stretch predicate (distance 1 becomes 39 against a 4k=4 bound)."""
        g = gen.cycle_graph(40)

        class FakeSpanner:
            def compress(self, graph, *, seed=None):
                mask = np.ones(graph.num_edges, dtype=bool)
                mask[0] = False
                return CompressionResult(
                    graph=graph.keep_edges(mask), original=graph,
                    scheme="spanner", params={"k": 1},
                )

        monkeypatch.setattr(properties, "build_scheme", lambda spec: FakeSpanner())
        msgs = properties.spanner_invariants(g, k=1, seed=0)
        assert any("stretch violated" in m for m in msgs)

    def test_fastpath_identity(self, plc300):
        rng = np.random.default_rng(0)
        mask = rng.random(plc300.num_edges) < 0.5
        assert properties.fastpath_identity(plc300, mask) == []

    def test_fastpath_identity_weighted_directed(self):
        g = with_uniform_weights(gen.rmat(5, 4, seed=2, directed=True), seed=3)
        rng = np.random.default_rng(1)
        mask = rng.random(g.num_edges) < 0.5
        assert properties.fastpath_identity(g, mask) == []


class TestRoundTrips:
    def test_snapshot_roundtrip(self, plc300, tmp_path):
        assert properties.snapshot_roundtrip(plc300, tmp_path) == []

    def test_snapshot_roundtrip_weighted(self, plc_weighted, tmp_path):
        assert properties.snapshot_roundtrip(plc_weighted, tmp_path) == []

    def test_store_roundtrip(self, plc300, tmp_path):
        assert properties.store_roundtrip(plc300, tmp_path) == []

    def test_parallel_grid_equivalence(self, plc300):
        assert properties.parallel_grid_equivalence(plc300) == []
