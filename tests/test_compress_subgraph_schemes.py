"""Tests for mappings, spanners, and lossy summarization (§4.5)."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.components import connected_components
from repro.compress.mappings import (
    jaccard_minhash_clustering,
    jaccard_similarity,
    low_diameter_decomposition,
)
from repro.compress.spanner import Spanner
from repro.compress.summarization import GraphSummary, LossySummarization
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


class TestLDD:
    def test_mapping_covers_all_vertices(self, plc300):
        ldd = low_diameter_decomposition(plc300, beta=0.5, seed=0)
        assert ldd.mapping.shape == (plc300.n,)
        assert ldd.mapping.min() == 0
        assert ldd.mapping.max() == ldd.num_clusters - 1

    def test_clusters_are_connected(self, plc300):
        ldd = low_diameter_decomposition(plc300, beta=0.5, seed=0)
        from repro.graphs.views import induced_subgraph

        for c in range(min(ldd.num_clusters, 20)):
            members = np.flatnonzero(ldd.mapping == c)
            sub, _ = induced_subgraph(plc300, members)
            assert connected_components(sub).num_components == 1

    def test_parent_edges_form_intra_cluster_forest(self, plc300):
        ldd = low_diameter_decomposition(plc300, beta=0.5, seed=0)
        eids = ldd.parent_edge_ids
        for v in range(plc300.n):
            e = eids[v]
            if e < 0:
                continue
            u, w = int(plc300.edge_src[e]), int(plc300.edge_dst[e])
            assert v in (u, w)
            other = u if v == w else w
            assert ldd.mapping[other] == ldd.mapping[v]
        # Tree edges count = n - #clusters.
        assert int((eids >= 0).sum()) == plc300.n - ldd.num_clusters

    def test_beta_controls_cluster_count(self, plc300):
        few = low_diameter_decomposition(plc300, beta=0.05, seed=1).num_clusters
        many = low_diameter_decomposition(plc300, beta=5.0, seed=1).num_clusters
        assert few < many

    def test_beta_validation(self, plc300):
        with pytest.raises(ValueError):
            low_diameter_decomposition(plc300, beta=0.0)


class TestJaccardClustering:
    def test_valid_compact_mapping(self, plc300):
        mapping = jaccard_minhash_clustering(plc300, seed=0)
        assert mapping.shape == (plc300.n,)
        assert mapping.max() == len(np.unique(mapping)) - 1

    def test_twins_merge(self):
        """Vertices with identical neighborhoods must land together."""
        # Two 'twin' leaves attached to the same clique.
        g = CSRGraph.from_edges(
            6, [0, 0, 1, 1, 2, 4, 5, 4, 5], [1, 2, 2, 3, 3, 0, 0, 1, 1]
        )
        mapping = jaccard_minhash_clustering(g, threshold=0.5, seed=3)
        assert mapping[4] == mapping[5]

    def test_cluster_size_cap(self, plc300):
        mapping = jaccard_minhash_clustering(plc300, threshold=0.0, max_cluster_size=4, seed=1)
        _, counts = np.unique(mapping, return_counts=True)
        assert counts.max() <= 4

    def test_jaccard_similarity_values(self, tiny):
        assert jaccard_similarity(tiny, 0, 0) == 1.0
        # 0 and 1 are adjacent and share neighbor 2.
        assert 0 < jaccard_similarity(tiny, 0, 1) <= 1.0

    def test_threshold_validation(self, plc300):
        with pytest.raises(ValueError):
            jaccard_minhash_clustering(plc300, threshold=2.0)


class TestSpanner:
    def test_preserves_connectivity(self, plc300):
        before = connected_components(plc300).num_components
        for k in (2, 4, 16):
            res = Spanner(k).compress(plc300, seed=0)
            assert connected_components(res.graph).num_components == before

    def test_larger_k_sparser(self, plc300):
        m2 = Spanner(2).compress(plc300, seed=1).graph.num_edges
        m16 = Spanner(16).compress(plc300, seed=1).graph.num_edges
        assert m16 <= m2

    def test_stretch_bounded(self, plc300):
        """Sampled pairwise distances grow by at most O(k)."""
        k = 4
        res = Spanner(k).compress(plc300, seed=2)
        lv0 = bfs(plc300, 0).level
        lv1 = bfs(res.graph, 0).level
        reached = lv0 > 0
        assert np.all(lv1[reached] > 0)  # still reachable
        stretch = lv1[reached] / lv0[reached]
        assert stretch.max() <= 4 * k

    def test_edge_budget(self, plc300):
        """m' = O(n^{1+1/k}): check with a generous constant."""
        for k in (2, 8):
            m = Spanner(k).compress(plc300, seed=3).graph.num_edges
            assert m <= 6 * plc300.n ** (1 + 1 / k) * (1 + np.log(k))

    def test_kernel_path_identical_to_fast_path(self, plc300):
        """Same seed -> same LDD -> both paths keep exactly the same edges."""
        scheme = Spanner(4)
        a = scheme.compress(plc300, seed=5).graph
        b = scheme.compress_via_kernels(plc300, seed=5).graph
        assert a.num_edges == b.num_edges
        assert np.array_equal(a.edge_src, b.edge_src)
        assert np.array_equal(a.edge_dst, b.edge_dst)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            Spanner(0.5)


class TestSummarization:
    def test_lossless_roundtrip(self, plc300):
        res = LossySummarization(0.0).compress(plc300, seed=0)
        assert res.graph.num_edges == plc300.num_edges
        assert np.array_equal(res.graph.edge_src, plc300.edge_src)
        assert np.array_equal(res.graph.edge_dst, plc300.edge_dst)

    def test_lossless_roundtrip_many_seeds(self):
        for seed in range(4):
            g = gen.powerlaw_cluster(150, 4, 0.7, seed=seed)
            res = LossySummarization(0.0).compress(g, seed=seed)
            assert res.graph.num_edges == g.num_edges

    def test_storage_never_exceeds_input(self, plc300):
        """The MDL rule only creates superedges that shrink the encoding."""
        res = LossySummarization(0.0).compress(plc300, seed=0)
        assert res.extras["storage_edges"] <= plc300.num_edges

    def test_epsilon_bounds_neighborhood_error(self, plc300):
        from repro.theory.bounds import summary_neighborhoods

        eps = 0.4
        res = LossySummarization(eps).compress(plc300, seed=1)
        check = summary_neighborhoods(plc300, res.graph, eps)
        assert check.holds, check

    def test_epsilon_bounds_edge_count(self, plc300):
        from repro.theory.bounds import summary_edges

        eps = 0.3
        res = LossySummarization(eps).compress(plc300, seed=2)
        assert summary_edges(plc300.num_edges, res.graph.num_edges, eps).holds

    def test_larger_epsilon_drops_more(self, plc300):
        small = LossySummarization(0.1).compress(plc300, seed=3)
        large = LossySummarization(0.8).compress(plc300, seed=3)
        diff_small = abs(small.graph.num_edges - plc300.num_edges)
        diff_large = abs(large.graph.num_edges - plc300.num_edges)
        assert diff_large >= diff_small

    def test_kernel_path_matches_fast_path_lossless(self, plc300):
        scheme = LossySummarization(0.0)
        a = scheme.compress(plc300, seed=4).graph
        b = scheme.compress_via_kernels(plc300, seed=4).graph
        assert a.num_edges == b.num_edges == plc300.num_edges

    def test_summary_decompress_dense_cluster(self):
        """A clique cluster should be encoded as one self-superedge."""
        g = gen.complete_graph(8)
        scheme = LossySummarization(0.0, threshold=0.2)
        summary = scheme.summarize(g, seed=0)
        assert summary.num_supervertices < 8
        approx = summary.decompress()
        assert approx.num_edges == g.num_edges

    def test_summary_object_fields(self, plc300):
        summary = LossySummarization(0.2).summarize(plc300, seed=5)
        assert isinstance(summary, GraphSummary)
        assert summary.storage_edges() == (
            len(summary.superedges)
            + len(summary.corrections_plus)
            + len(summary.corrections_minus)
        )

    def test_directed_rejected(self):
        g = CSRGraph.from_edges(3, [0], [1], directed=True)
        with pytest.raises(ValueError):
            LossySummarization(0.1).compress(g)


class TestSummaryStorage:
    """Summary serialization: the storage use case of the paper's title."""

    def test_roundtrip(self, plc300, tmp_path):
        from repro.compress.summarization import (
            LossySummarization,
            load_summary,
            save_summary,
        )

        summary = LossySummarization(0.2).summarize(plc300, seed=0)
        path = tmp_path / "summary.npz"
        save_summary(summary, path)
        back = load_summary(path)
        assert back.num_vertices == summary.num_vertices
        assert back.superedges == summary.superedges
        assert back.corrections_plus == summary.corrections_plus
        assert back.corrections_minus == summary.corrections_minus
        a = summary.decompress()
        b = back.decompress()
        assert a.num_edges == b.num_edges
        assert np.array_equal(a.edge_src, b.edge_src)

    def test_lossless_file_roundtrips_graph(self, plc300, tmp_path):
        from repro.compress.summarization import (
            LossySummarization,
            load_summary,
            save_summary,
        )

        summary = LossySummarization(0.0).summarize(plc300, seed=1)
        path = tmp_path / "lossless.npz"
        save_summary(summary, path)
        restored = load_summary(path).decompress()
        assert restored.num_edges == plc300.num_edges
        assert np.array_equal(restored.edge_src, plc300.edge_src)


class TestApproxListingTR:
    """§4.3: approximate triangle discovery further reduces TR's cost."""

    def test_approx_listing_is_subset_semantics(self, plc300):
        from repro.compress.triangle_reduction import TriangleReduction

        exact = TriangleReduction(0.5).compress(plc300, seed=2)
        approx = TriangleReduction(0.5, approx_listing_p=0.6).compress(plc300, seed=2)
        # Fewer triangles discovered -> fewer (or equal) edges removed.
        assert approx.extras["triangles"] <= exact.extras["triangles"]
        assert approx.edges_removed <= exact.edges_removed
        # Still a subgraph of the original.
        for u, v in zip(approx.graph.edge_src, approx.graph.edge_dst):
            assert plc300.has_edge(int(u), int(v))

    def test_approx_listing_p_one_equals_exact(self, plc300):
        from repro.compress.triangle_reduction import TriangleReduction

        exact = TriangleReduction(0.7).compress(plc300, seed=3)
        full = TriangleReduction(0.7, approx_listing_p=1.0).compress(plc300, seed=3)
        # p=1 subsample keeps every edge: identical triangle set; the
        # extra RNG draw shifts the stream, so compare counts not bits.
        assert full.extras["triangles"] == exact.extras["triangles"]

    def test_validation(self):
        from repro.compress.triangle_reduction import TriangleReduction

        import pytest

        with pytest.raises(ValueError):
            TriangleReduction(0.5, approx_listing_p=0.0)
        with pytest.raises(ValueError):
            TriangleReduction(0.5, approx_listing_p=1.5)


class TestWeightedSpanner:
    """Weighted LDD waves: trees follow light edges, improving weighted
    SSSP stretch (§7.2's claim for spanners on weighted graphs)."""

    def test_weighted_option_changes_trees(self):
        from repro.graphs.weights import with_exponential_weights

        g = with_exponential_weights(
            gen.powerlaw_cluster(300, 5, 0.6, seed=4), 2.0, seed=5
        )
        hop = Spanner(4, weighted=False).compress(g, seed=6).graph
        wtd = Spanner(4, weighted=True).compress(g, seed=6).graph
        assert not np.array_equal(hop.edge_src, wtd.edge_src)

    def test_weighted_spanner_improves_weighted_stretch(self):
        from repro.algorithms.sssp import dijkstra
        from repro.graphs.weights import with_exponential_weights

        g = with_exponential_weights(
            gen.powerlaw_cluster(300, 5, 0.6, seed=7), 2.0, seed=8
        )
        base = dijkstra(g, 0).distance

        def mean_stretch(sub):
            d = dijkstra(sub, 0).distance
            both = np.isfinite(base) & np.isfinite(d) & (base > 0)
            return float(np.mean(d[both] / base[both]))

        stretches_w, stretches_h = [], []
        for seed in range(3):
            stretches_h.append(
                mean_stretch(Spanner(4, weighted=False).compress(g, seed=seed).graph)
            )
            stretches_w.append(
                mean_stretch(Spanner(4, weighted=True).compress(g, seed=seed).graph)
            )
        assert np.mean(stretches_w) <= np.mean(stretches_h) + 0.05

    def test_weighted_still_preserves_connectivity(self):
        from repro.graphs.weights import with_uniform_weights

        g = with_uniform_weights(gen.powerlaw_cluster(200, 4, 0.5, seed=9), seed=10)
        sub = Spanner(8, weighted=True).compress(g, seed=11).graph
        assert (
            connected_components(sub).num_components
            == connected_components(g).num_components
        )

    def test_unweighted_graph_ignores_flag(self, plc300):
        a = Spanner(4, weighted=True).compress(plc300, seed=12).graph
        b = Spanner(4, weighted=False).compress(plc300, seed=12).graph
        assert np.array_equal(a.edge_src, b.edge_src)
