"""End-to-end integration tests asserting the paper's evaluation *shapes*.

These are the qualitative claims §7 makes — who wins, in which direction a
metric moves — checked on the synthetic stand-ins.  Absolute numbers are
not expected to match the Cray runs; the orderings are.
"""

import numpy as np
import pytest

from repro.algorithms.components import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangles import count_triangles, triangles_per_vertex
from repro.compress.spanner import Spanner
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.uniform import RandomUniformSampling
from repro.graphs import generators as gen
from repro.metrics.bfs_quality import critical_edge_preservation
from repro.metrics.distributions import fit_power_law
from repro.metrics.divergences import kl_divergence
from repro.metrics.ordering import reordered_neighbor_pairs


@pytest.fixture(scope="module")
def social():
    """A triangle-rich power-law graph (the paper's social-network regime)."""
    return gen.powerlaw_cluster(600, 6, 0.7, seed=42)


class TestFig5Shapes:
    def test_spanner_largest_reduction_tr_smallest(self, social):
        """§7.1: "spanners and p-1-TR ensure the largest and smallest
        storage reductions, respectively"."""
        spanner = Spanner(16).compress(social, seed=0).edge_reduction
        tr = TriangleReduction(0.5).compress(social, seed=0).edge_reduction
        uniform = RandomUniformSampling(0.5).compress(social, seed=0).edge_reduction
        assert spanner > uniform > tr

    def test_uniform_ratio_tracks_p(self, social):
        """Uniform/spectral "can offer arbitrarily small or large
        reductions of m" depending on p."""
        ratios = [
            RandomUniformSampling(p).compress(social, seed=1).compression_ratio
            for p in (0.1, 0.5, 0.9)
        ]
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[0] < 0.2 and ratios[2] > 0.8


class TestTable5Shape:
    def test_kl_grows_with_compression(self, social):
        """Table 5: "the higher compression ratio is (lower m), the higher
        KL divergence becomes"."""
        pr0 = pagerank(social).ranks
        kls = []
        for p in (0.8, 0.5, 0.2):  # decreasing kept fraction
            sub = RandomUniformSampling(p).compress(social, seed=2).graph
            kls.append(kl_divergence(pr0, pagerank(sub).ranks))
        assert kls[0] < kls[1] < kls[2]

    def test_eo_tr_gentler_than_uniform_half(self, social):
        """Table 5 rows: EO-TR KL values sit well below uniform p=0.5."""
        pr0 = pagerank(social).ranks
        tr = TriangleReduction(0.8, variant="edge_once").compress(social, seed=3).graph
        uni = RandomUniformSampling(0.5).compress(social, seed=3).graph
        kl_tr = kl_divergence(pr0, pagerank(tr).ranks)
        kl_uni = kl_divergence(pr0, pagerank(uni).ranks)
        assert kl_tr < kl_uni


class TestTable6Shape:
    def test_triangle_destruction_ordering(self, social):
        """Table 6: TR at high p crushes T; spanners at large k eliminate
        almost all triangles; mild uniform keeps most."""
        t0 = count_triangles(social)
        t_tr9 = count_triangles(TriangleReduction(0.9).compress(social, seed=4).graph)
        t_uni8 = count_triangles(RandomUniformSampling(0.8).compress(social, seed=4).graph)
        t_span = count_triangles(Spanner(16).compress(social, seed=4).graph)
        assert t_tr9 < t_uni8 < t0
        assert t_span < 0.1 * t0

    def test_tc_reordering_measurable_at_matched_budget(self, social):
        """§7.2 claims spectral preserves TC-per-vertex order best.  On our
        synthetic stand-ins the measurement goes the other way (uniform
        scales every vertex's count by p³ ≈ uniformly, so the *order*
        barely moves, while degree-aware sampling shifts hub counts) — a
        recorded deviation, see EXPERIMENTS.md.  This test pins the
        harness behaviour: both metrics are deterministic, bounded, and
        uniform stays under the reordering level the paper's comparison
        needs resolving."""
        tv0 = triangles_per_vertex(social).astype(float)
        spec = SpectralSparsifier(0.6, reweight=False).compress(social, seed=5).graph
        keep = spec.num_edges / social.num_edges
        uni = RandomUniformSampling(keep).compress(social, seed=5).graph
        r_spec = reordered_neighbor_pairs(social, tv0, triangles_per_vertex(spec).astype(float))
        r_uni = reordered_neighbor_pairs(social, tv0, triangles_per_vertex(uni).astype(float))
        assert 0.0 <= r_uni <= r_spec <= 0.3


class TestSection72Shapes:
    def test_spanner_critical_edges_decay_with_k(self, social):
        """§7.2: k = 2/8/32 preserve decreasing fractions of critical
        edges, still substantial at k=2."""
        fractions = [
            critical_edge_preservation(social, Spanner(k).compress(social, seed=6).graph, 0)
            for k in (2, 8, 32)
        ]
        assert fractions[0] >= fractions[1] >= fractions[2]
        assert fractions[0] > 0.5

    def test_uniform_disconnects_spectral_does_not(self):
        """§7.2: "random uniform sampling and spectral sparsification
        disconnect graphs ... the latter generates significantly fewer
        components"."""
        g = gen.rmat(11, 6, seed=7)
        c0 = connected_components(g).num_components
        spec = SpectralSparsifier(0.4).compress(g, seed=8).graph
        keep = spec.num_edges / g.num_edges
        uni = RandomUniformSampling(keep).compress(g, seed=8).graph
        c_spec = connected_components(spec).num_components
        c_uni = connected_components(uni).num_components
        assert c_spec < c_uni

    def test_summarization_acts_like_uniform_on_components(self, social):
        """§7.2: summarization can disconnect the graph like sampling."""
        res = LossySummarization(0.9).compress(social, seed=9)
        c0 = connected_components(social).num_components
        c1 = connected_components(res.graph).num_components
        assert c1 >= c0  # can only disconnect or stay


class TestFig7Shape:
    def test_spanners_strengthen_the_power_law(self):
        """Fig. 7: the degree histogram gets closer to a straight line in
        log-log space under spanner compression (robust at k=2 on our
        scale; the paper observes it through k=32 at 10⁷-vertex scale)."""
        g = gen.rmat(12, 10, seed=10)
        res0 = fit_power_law(g).residual
        res2 = fit_power_law(Spanner(2).compress(g, seed=11).graph).residual
        assert res2 < res0


class TestFig8Shape:
    def test_sampling_removes_clutter(self):
        """Fig. 8: uniform sampling reduces the number of distinct scattered
        (degree, fraction) points — "removes the clutter"."""
        from repro.distributed.engine import distributed_uniform_sampling
        from repro.metrics.distributions import degree_histogram

        g = gen.rmat(12, 10, seed=12, directed=True)
        pts0 = len(degree_histogram(g)[0])
        sub = distributed_uniform_sampling(g, 0.4, num_ranks=4, seed=13).result.graph
        pts1 = len(degree_histogram(sub)[0])
        assert pts1 < pts0
