"""Tests for the named-sweep harness, resumable BENCH records, and the
``python -m repro.runner`` CLI."""

import json

import pytest

from repro.graphs import generators as gen
from repro.runner.harness import (
    SweepSpec,
    available_sweeps,
    get_sweep,
    register_sweep,
    run_sweep,
    write_bench_record,
)
from repro.runner.store import ArtifactStore


@pytest.fixture
def tiny_sweep() -> SweepSpec:
    return SweepSpec(
        name="tiny_test",
        graphs=("a", "b"),
        schemes=("uniform(p=0.5)", "spanner(k=4)"),
        algorithms=("pr", "cc"),
        seeds=(0, 1),
        pr_iterations=20,
    )


@pytest.fixture
def loader():
    graphs = {
        "a": gen.powerlaw_cluster(120, 4, 0.5, seed=1),
        "b": gen.erdos_renyi(150, m=450, seed=2),
    }
    return graphs.__getitem__


def _values(table):
    return [
        (c.graph, c.scheme, c.algorithm, c.metric, c.seed, c.value,
         c.compression_ratio)
        for c in table
    ]


class TestRunSweep:
    def test_spans_graphs_and_seeds(self, tiny_sweep, loader):
        result = run_sweep(tiny_sweep, graph_loader=loader)
        # 2 graphs x 2 schemes x 2 algorithms x 2 seeds, default metrics.
        assert len(result.table) == 16
        assert result.table.graphs() == ["a", "b"]
        assert {c.seed for c in result.table} == {0, 1}
        assert result.perf["cells"] == 16
        assert result.perf["cache_misses"] == 16
        assert result.perf["wall_seconds"] > 0

    def test_warm_store_run_is_pure_replay(self, tiny_sweep, loader, tmp_path):
        cold = run_sweep(tiny_sweep, graph_loader=loader, store=tmp_path / "store")
        assert cold.perf["cache_misses"] == 16
        warm = run_sweep(tiny_sweep, graph_loader=loader, store=tmp_path / "store")
        # The acceptance criterion: a re-run against a warm store performs
        # zero recomputation — every cell group is a hit.
        assert warm.perf["cache_misses"] == 0
        assert warm.perf["cache_hits"] == 16
        assert warm.perf["compress_seconds"] == 0.0
        assert _values(warm.table) == _values(cold.table)

    def test_interrupted_sweep_resumes(self, tiny_sweep, loader, tmp_path):
        from dataclasses import replace

        store_path = tmp_path / "store"
        # "Interrupted" run: only the first seed completed.
        run_sweep(replace(tiny_sweep, seeds=(0,)), graph_loader=loader, store=store_path)
        resumed = run_sweep(tiny_sweep, graph_loader=loader, store=store_path)
        assert resumed.perf["cache_hits"] == 8
        assert resumed.perf["cache_misses"] == 8

    def test_axis_overrides(self, tiny_sweep, loader):
        result = run_sweep(tiny_sweep, graph_loader=loader, seeds=[7], graphs=["a"])
        assert result.perf["seeds"] == [7]
        assert result.table.graphs() == ["a"]
        assert len(result.table) == 4

    def test_bench_record_written(self, tiny_sweep, loader, tmp_path):
        result = run_sweep(tiny_sweep, graph_loader=loader, store=tmp_path / "s")
        path = write_bench_record(result, tmp_path / "out")
        assert path.name == "BENCH_tiny_test.json"
        record = json.loads(path.read_text())
        assert record["schema_version"] == 1
        assert record["sweep"] == "tiny_test"
        assert record["cells"] == 16
        assert {"cache_hits", "cache_misses", "compress_seconds",
                "wall_seconds", "grids", "store_stats"} <= set(record)


class TestRegistry:
    def test_builtin_sweeps_registered(self):
        assert {"smoke", "fig5", "table5"} <= set(available_sweeps())
        assert get_sweep("table5").metrics == ("kl",)

    def test_unknown_sweep_named_in_error(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            get_sweep("nope")

    def test_duplicate_registration_rejected(self):
        spec = SweepSpec(name="dup_test", graphs=("a",), schemes=("uniform(p=0.5)",))
        register_sweep(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_sweep(spec)
            register_sweep(spec, replace_existing=True)
        finally:
            from repro.runner import harness

            harness._SWEEPS.pop("dup_test", None)


class TestCLI:
    def test_list(self, capsys):
        from repro.runner.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "table5" in out

    def test_no_sweep_is_usage_error(self, capsys):
        from repro.runner.__main__ import main

        assert main([]) == 2

    def test_smoke_run_twice_via_cli(self, tmp_path, capsys):
        from repro.runner.__main__ import main

        args = [
            "smoke",
            "--store", str(tmp_path / "store"),
            "--out", str(tmp_path / "out"),
            "--seeds", "0",
            "--csv",
        ]
        assert main(args) == 0
        record = json.loads((tmp_path / "out" / "BENCH_smoke.json").read_text())
        assert record["cache_misses"] == record["cells_scheduled"] > 0
        assert main(args + ["--markdown"]) == 0
        record = json.loads((tmp_path / "out" / "BENCH_smoke.json").read_text())
        assert record["cache_misses"] == 0
        assert record["cache_hits"] == record["cells_scheduled"]
        assert (tmp_path / "out" / "smoke_cells.csv").exists()
        assert "| scheme |" in capsys.readouterr().out
