"""Property-based equivalence of the two SSSP engines.

Δ-stepping's correctness must not depend on the bucket width; for random
weighted graphs and random Δ it must match Dijkstra exactly — the
invariant the §7.1 Δ-tuning experiments rely on (Δ changes speed, never
answers).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms.bfs import bfs
from repro.algorithms.sssp import delta_stepping, dijkstra
from repro.graphs.csr import CSRGraph


@st.composite
def weighted_graphs(draw, max_n=25, max_m=80):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    g = CSRGraph.from_edges(n, src, dst)
    if g.num_edges == 0:
        return g
    seed = draw(st.integers(0, 2**31 - 1))
    w = np.random.default_rng(seed).uniform(0.1, 10.0, size=g.num_edges)
    return g.with_weights(w)


@given(weighted_graphs(), st.floats(0.1, 50.0), st.integers(0, 24))
@settings(max_examples=80, deadline=None)
def test_delta_stepping_equals_dijkstra(g, delta, source_pick):
    source = source_pick % g.n
    a = dijkstra(g, source)
    b = delta_stepping(g, source, delta=delta)
    assert np.allclose(
        np.nan_to_num(a.distance, posinf=-1.0),
        np.nan_to_num(b.distance, posinf=-1.0),
    )
    # Parents may differ (ties) but must realize the same distances.
    for v in range(g.n):
        if v == source or not np.isfinite(b.distance[v]):
            continue
        p = int(b.parent[v])
        w = g.weight_of(g.edge_id(p, v))
        assert b.distance[v] == pytest.approx(b.distance[p] + w)


import pytest  # noqa: E402  (used inside the property above)


@given(weighted_graphs(), st.integers(0, 24))
@settings(max_examples=40, deadline=None)
def test_unweighted_distances_match_bfs_levels(g, source_pick):
    source = source_pick % g.n
    unweighted = g.with_weights(None)
    levels = bfs(unweighted, source).level
    dist = delta_stepping(unweighted, source).distance
    finite = np.isfinite(dist)
    assert np.array_equal(np.flatnonzero(levels >= 0), np.flatnonzero(finite))
    assert np.allclose(dist[finite], levels[levels >= 0])
