"""Tests for the declarative spec layer: SchemeSpec round trips, the open
registry, params-driven scheme identity, and Chain composition."""

import json

import pytest

from repro.compress import (
    Chain,
    CompressionScheme,
    SchemeSpec,
    make_scheme,
    register_scheme,
    registered_schemes,
    unregister_scheme,
)
from repro.compress.base import CompressionResult
from repro.compress.registry import SCHEME_FACTORIES, build_scheme, get_entry


class TestSchemeSpecParsing:
    def test_named_form_types_preserved(self):
        spec = SchemeSpec.parse("spanner(k=8, weighted=false)")
        assert spec.name == "spanner"
        assert spec.params == {"k": 8, "weighted": False}
        assert isinstance(spec.params["k"], int)

    def test_tr_labels_parse_to_triangle_reduction(self):
        spec = SchemeSpec.parse("EO-0.8-1-TR")
        assert spec.name == "triangle_reduction"
        assert spec.params == {"p": 0.8, "x": 1, "variant": "edge_once"}
        assert isinstance(spec.params["x"], int)

    def test_tr_label_round_trips(self):
        for label in ["0.5-1-TR", "EO-0.8-1-TR", "CT-0.5-2-TR", "EO-1.0-1-TR"]:
            assert SchemeSpec.parse(label).to_string() == label

    def test_alias_canonicalized(self):
        assert SchemeSpec.parse("tr(p=0.5)").name == "triangle_reduction"

    def test_none_and_bool_values(self):
        spec = SchemeSpec.parse("low_degree(max_degree=2, rounds=none, relabel=true)")
        assert spec.params == {"max_degree": 2, "rounds": None, "relabel": True}
        assert SchemeSpec.parse(spec.to_string()) == spec

    def test_bare_positional_binds_via_registry(self):
        assert SchemeSpec.parse("spanner(8)").params == {"k": 8}
        assert SchemeSpec.parse("uniform(0.5)").params == {"p": 0.5}

    def test_pipeline_syntax(self):
        spec = SchemeSpec.parse("uniform(p=0.9) | spanner(k=4)")
        assert spec.name == "chain"
        assert [s.name for s in spec.stages] == ["uniform", "spanner"]
        assert SchemeSpec.parse(spec.to_string()) == spec

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            SchemeSpec.parse("")
        with pytest.raises(ValueError):
            SchemeSpec.parse("low_degree(3)")  # no positional registered

    def test_json_round_trip(self):
        spec = SchemeSpec.parse("spectral(p=0.05, variant=avgdeg)")
        payload = json.dumps(spec.to_dict())
        assert SchemeSpec.from_dict(json.loads(payload)) == spec
        chain = SchemeSpec.parse("uniform(p=0.9) | EO-0.8-1-TR")
        payload = json.dumps(chain.to_dict())
        assert SchemeSpec.from_dict(json.loads(payload)) == chain


class TestRegistryRoundTrip:
    def test_every_registered_scheme_round_trips(self):
        entries = registered_schemes()
        assert len(entries) >= 10
        for name, entry in entries.items():
            scheme = make_scheme(entry.example)
            spec = scheme.spec()
            assert spec.name == name
            rebuilt = make_scheme(spec.to_string())
            assert rebuilt == scheme, name
            assert hash(rebuilt) == hash(scheme), name
            # Canonical strings are stable under re-parsing.
            canonical = spec.to_string()
            assert SchemeSpec.parse(canonical).to_string() == canonical, name
            # And survive JSON transport.
            assert SchemeSpec.from_dict(spec.to_dict()) == spec, name

    def test_integer_params_stay_int(self):
        k = make_scheme("spanner(k=32)").k
        assert k == 32 and isinstance(k, int)
        assert isinstance(make_scheme("spanner(k=32)").params()["k"], int)
        rank = make_scheme("lowrank(rank=8)").rank
        assert rank == 8 and isinstance(rank, int)
        x = make_scheme("EO-0.8-2-TR").x
        assert x == 2 and isinstance(x, int)
        # Through the full parse -> construct -> params -> format loop.
        assert "k=32" in make_scheme("spanner(k=32)").spec().to_string()

    def test_float_k_still_supported(self):
        assert make_scheme("spanner(k=2.5)").k == 2.5

    def test_external_registration(self):
        @register_scheme("noop_test_scheme", summary="does nothing")
        class Noop(CompressionScheme):
            def params(self):
                return {}

            def compress(self, g, *, seed=None):
                return CompressionResult(
                    graph=g, original=g, scheme=self.name, params={}
                )

        try:
            scheme = make_scheme("noop_test_scheme")
            assert isinstance(scheme, Noop)
            assert scheme.name == "noop_test_scheme"
            assert "noop_test_scheme" in SCHEME_FACTORIES
        finally:
            unregister_scheme("noop_test_scheme")
        with pytest.raises(ValueError):
            make_scheme("noop_test_scheme")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):

            @register_scheme("uniform")
            class Impostor(CompressionScheme):
                pass

    def test_alias_hijack_rejected(self):
        with pytest.raises(ValueError, match="alias"):

            @register_scheme("freeloader", aliases=("uniform",))
            class AliasImpostor(CompressionScheme):
                pass

        with pytest.raises(ValueError, match="alias"):

            @register_scheme("tr")
            class NameImpostor(CompressionScheme):
                pass

    def test_factories_view_back_compat(self):
        assert SCHEME_FACTORIES["tr"] is SCHEME_FACTORIES["triangle_reduction"]
        assert "spanner" in SCHEME_FACTORIES
        assert len(SCHEME_FACTORIES) >= 11
        assert get_entry("tr").positional == "p"


class TestSchemeIdentity:
    def test_eq_and_hash_by_params(self):
        a = make_scheme("uniform(p=0.5)")
        b = make_scheme("uniform(p=0.5)")
        c = make_scheme("uniform(p=0.6)")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_different_classes_not_equal(self):
        assert make_scheme("uniform(p=0.5)") != make_scheme("vertex_sampling(p=0.5)")

    def test_repr_driven_by_params(self):
        assert repr(make_scheme("uniform(p=0.5)")) == "RandomUniformSampling(p=0.5)"

    def test_usable_as_cache_key(self):
        cache = {make_scheme("spanner(k=8)"): "hit"}
        assert cache[make_scheme("spanner(k=8)")] == "hit"


class TestChain:
    def test_or_operator_builds_chain(self, plc300):
        pipeline = make_scheme("low_degree(max_degree=1)") | make_scheme("spanner(k=4)")
        assert isinstance(pipeline, Chain)
        assert len(pipeline.stages) == 2

    def test_lineage_records_each_stage(self, plc300):
        pipeline = make_scheme("uniform(p=0.9) | spanner(k=4)")
        result = pipeline.compress(plc300, seed=0)
        assert [st.scheme for st in result.lineage] == ["uniform", "spanner"]
        assert result.lineage[0].params == {"p": 0.9}
        assert result.lineage[1].params == {"k": 4, "weighted": False}
        # Edge counts thread through: stage i+1 starts where stage i ended.
        assert result.lineage[0].edges_in == plc300.num_edges
        assert result.lineage[0].edges_out == result.lineage[1].edges_in
        assert result.lineage[1].edges_out == result.graph.num_edges
        # The whole-pipeline ratio is measured against the first graph.
        assert result.original is plc300

    def test_single_scheme_lineage_autopopulated(self, plc300):
        result = make_scheme("uniform(p=0.5)").compress(plc300, seed=0)
        assert len(result.lineage) == 1
        assert result.lineage[0].scheme == "uniform"
        assert result.lineage[0].params == {"p": 0.5}

    def test_chain_flattens(self):
        a = make_scheme("uniform(p=0.9)")
        b = make_scheme("spanner(k=4)")
        c = make_scheme("low_degree(max_degree=1)")
        assert len(((a | b) | c).stages) == 3

    def test_chain_spec_round_trip(self):
        pipeline = make_scheme("uniform(p=0.9) | spanner(k=4)")
        rebuilt = make_scheme(pipeline.spec().to_string())
        assert rebuilt == pipeline

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            Chain([])
