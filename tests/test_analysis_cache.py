"""Tests for the graph-keyed analysis cache and its perf-record plumbing.

Covers the cache contract (identity keying, weak entries, hit/miss
accounting, fingerprint adoption), mutation-free invalidation (a derived
graph never sees its parent's cached triangles), and the headline reuse
guarantee: a multi-seed TR sweep lists the original graph's triangles
exactly once, observable through cache stats and BENCH perf records.
"""

import gc
import weakref

import numpy as np
import pytest

from repro.algorithms.triangles import (
    count_triangles,
    edge_triangle_counts,
    list_triangles,
)
from repro.analytics.session import Session
from repro.graphs import generators as gen
from repro.graphs.analysis import AnalysisCache, analysis_cache, stats_delta


@pytest.fixture
def cache():
    return analysis_cache()


def triangle_rich(seed=0, n=300):
    return gen.powerlaw_cluster(n, 4, 0.6, seed=seed)


class TestAnalysisCache:
    def test_lookup_computes_once(self):
        c = AnalysisCache()
        g = triangle_rich()
        calls = []

        def build(graph):
            calls.append(graph)
            return "value"

        assert c.lookup(g, "thing", build) == "value"
        assert c.lookup(g, "thing", build) == "value"
        assert len(calls) == 1
        s = c.stats()
        assert s["hits"] == 1 and s["misses"] == 1

    def test_identity_keyed_not_content_keyed(self):
        c = AnalysisCache()
        g1 = triangle_rich(seed=1)
        g2 = triangle_rich(seed=1)  # same content, different object
        c.put(g1, "thing", "a")
        assert c.peek(g1, "thing") == "a"
        assert c.peek(g2, "thing") is None

    def test_entries_die_with_the_graph(self):
        c = AnalysisCache()
        g = triangle_rich()
        c.put(g, "thing", "value")
        assert c.stats()["live_graphs"] == 1
        ref = weakref.ref(g)
        del g
        gc.collect()
        assert ref() is None
        assert c.stats()["live_graphs"] == 0

    def test_disabled_cache_passes_through(self):
        c = AnalysisCache()
        c.enabled = False
        g = triangle_rich()
        calls = []
        c.lookup(g, "thing", lambda graph: calls.append(1) or "v")
        c.lookup(g, "thing", lambda graph: calls.append(1) or "v")
        assert len(calls) == 2
        assert c.stats()["hits"] == 0 and c.stats()["misses"] == 0

    def test_fingerprint_adoption(self):
        c = AnalysisCache()
        g1 = triangle_rich(seed=2)
        g2 = triangle_rich(seed=2)
        c.put(g1, "triangle_list", "expensive")
        c.link_fingerprint(g1, "fp")
        assert c.resolve_fingerprint("fp") is g1
        assert c.adopt(g2, "fp") == 1
        assert c.peek(g2, "triangle_list") == "expensive"
        # A dead carrier resolves to nothing and adoption is a no-op.
        del g1
        gc.collect()
        g3 = triangle_rich(seed=2)
        c2 = AnalysisCache()
        assert c2.resolve_fingerprint("fp") is None
        assert c2.adopt(g3, "fp") == 0

    def test_dead_fingerprint_links_self_prune(self):
        """Collected carriers remove their own fingerprint entries, so the
        link table does not grow with transient graphs."""
        c = AnalysisCache()
        for i in range(5):
            g = triangle_rich(seed=i, n=20)
            c.link_fingerprint(g, f"fp-{i}")
        del g
        gc.collect()
        assert len(c._by_fingerprint) == 0
        # Re-linking a fingerprint keeps the newest carrier even if the
        # old one dies afterwards.
        g1 = triangle_rich(seed=0, n=20)
        g2 = triangle_rich(seed=1, n=20)
        c.link_fingerprint(g1, "fp")
        c.link_fingerprint(g2, "fp")
        del g1
        gc.collect()
        assert c.resolve_fingerprint("fp") is g2

    def test_stats_delta(self):
        before = {"hits": 1, "misses": 2, "by_analysis": {"a": {"hits": 1, "misses": 2}}}
        after = {
            "hits": 4,
            "misses": 2,
            "by_analysis": {"a": {"hits": 1, "misses": 2}, "b": {"hits": 3, "misses": 0}},
        }
        d = stats_delta(before, after)
        assert d == {"hits": 3, "misses": 0, "by_analysis": {"b": {"hits": 3, "misses": 0}}}


class TestTriangleAnalyses:
    def test_list_triangles_memoized(self, cache):
        g = triangle_rich()
        t1 = list_triangles(g)
        t2 = list_triangles(g)
        assert t1 is t2
        assert cache.peek(g, "triangle_list") is t1

    def test_count_reuses_cached_list(self, cache):
        g = triangle_rich()
        tl = list_triangles(g)
        before = cache.stats()
        assert count_triangles(g) == tl.count
        delta = stats_delta(before, cache.stats())
        assert delta["by_analysis"]["triangle_list"]["hits"] == 1
        assert delta["misses"] == 0

    def test_count_without_list_caches_scalar_only(self, cache):
        g = triangle_rich(seed=7)
        before = cache.stats()
        c1 = count_triangles(g)
        c2 = count_triangles(g)
        assert c1 == c2
        assert cache.peek(g, "triangle_list") is None
        delta = stats_delta(before, cache.stats())
        assert delta["by_analysis"]["triangle_count"] == {"hits": 1, "misses": 1}

    def test_edge_triangle_counts_memoized(self, cache):
        g = triangle_rich()
        assert edge_triangle_counts(g) is edge_triangle_counts(g)

    def test_cached_arrays_are_read_only(self):
        """Shared cached buffers refuse in-place mutation — a caller
        sorting/overwriting a result cannot poison later consumers."""
        g = triangle_rich()
        tl = list_triangles(g)
        counts = edge_triangle_counts(g)
        for arr in (tl.vertices, tl.edge_ids, counts):
            with pytest.raises(ValueError, match="read-only"):
                arr[...] = 0

    def test_derived_graph_never_sees_parent_triangles(self, cache):
        """Mutation-free invalidation: the child recomputes its own list."""
        g = triangle_rich()
        parent_list = list_triangles(g)
        assert parent_list.count > 0
        rng = np.random.default_rng(0)
        child = g.keep_edges(rng.random(g.num_edges) < 0.5)
        assert cache.peek(child, "triangle_list") is None
        child_list = list_triangles(child)
        assert child_list is not parent_list
        assert child_list.count <= parent_list.count  # subgraph monotone
        # And the parent's entry was left untouched.
        assert cache.peek(g, "triangle_list") is parent_list


class TestSessionIntegration:
    def test_tr_multiseed_sweep_lists_triangles_exactly_once(self, cache):
        """The acceptance guarantee: S TR seeds + the tc baseline = one
        O(m^{3/2}) listing of the original graph."""
        g = triangle_rich(seed=3)
        session = Session(g, seed=0)
        before = cache.stats()
        for seed in (0, 1, 2):
            session.grid(["EO-0.6-1-TR"], ["tc"], seed=seed)
        delta = stats_delta(before, cache.stats())
        assert delta["by_analysis"]["triangle_list"]["misses"] == 1
        assert delta["by_analysis"]["triangle_list"]["hits"] >= 3

    def test_grid_perf_reports_analysis_cache(self):
        g = triangle_rich(seed=4)
        session = Session(g, seed=0)
        session.grid(["0.5-1-TR"], ["tc"])
        perf = session.last_grid_perf
        assert "analysis_cache" in perf
        assert perf["analysis_cache"]["misses"] >= 1
        assert "triangle_list" in perf["analysis_cache"]["by_analysis"]

    def test_store_grid_perf_reports_analysis_cache(self, tmp_path):
        g = triangle_rich(seed=5)
        session = Session(g, seed=0, store=tmp_path / "store")
        session.grid(["0.5-1-TR"], ["tc"])
        perf = session.last_grid_perf
        assert perf["analysis_cache"]["misses"] >= 1
        # Warm replay does no structural analysis at all.
        warm = Session(g, seed=0, store=tmp_path / "store")
        warm.grid(["0.5-1-TR"], ["tc"])
        assert warm.last_grid_perf["analysis_cache"] == {
            "hits": 0,
            "misses": 0,
            "by_analysis": {},
        }

    def test_run_sweep_bench_record_carries_analysis_counts(self):
        from repro.runner.harness import SweepSpec, run_sweep

        g = triangle_rich(seed=6)
        spec = SweepSpec(
            name="tr-cache-probe",
            graphs=("probe",),
            schemes=("EO-0.6-1-TR",),
            algorithms=("tc",),
            seeds=(0, 1, 2),
        )
        result = run_sweep(spec, graph_loader=lambda name: g)
        record = result.bench_record()
        assert record["analysis_misses"] >= 1
        assert record["analysis_hits"] >= 2
        # Per-grid detail: exactly one grid misses the triangle list.
        listing_misses = sum(
            grid["analysis_cache"]["by_analysis"]
            .get("triangle_list", {})
            .get("misses", 0)
            for grid in record["grids"]
        )
        assert listing_misses == 1


class TestSnapshotAdoption:
    def test_store_reload_adopts_live_twin_analyses(self, tmp_path, cache):
        from repro.runner.store import ArtifactStore

        g = triangle_rich(seed=8)
        tl = list_triangles(g)
        store = ArtifactStore(tmp_path / "store")
        fp, _ = store.add_graph(g)
        reloaded = store.load_graph(fp)
        assert reloaded is not g
        assert cache.peek(reloaded, "triangle_list") is tl
        assert cache.peek(reloaded, "fingerprint") == fp
