"""Tests for repro.obs.metrics: registry semantics and Prometheus text."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    counter,
    gauge,
    get_metric,
    histogram,
    metric_names,
    prometheus_text,
    reset_metrics,
    snapshot,
)


@pytest.fixture(autouse=True)
def zeroed_registry():
    """Zero the process-global registry around every test.

    The registry is intentionally process-global (modules cache metric
    objects at import time), so tests reset values in place rather than
    swapping the dict out.
    """
    reset_metrics()
    yield
    reset_metrics()


class TestCounters:
    def test_inc_and_value(self):
        c = counter("repro.test.hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_idempotent_registration(self):
        assert counter("repro.test.hits") is counter("repro.test.hits")

    def test_monotonic(self):
        with pytest.raises(ValueError):
            counter("repro.test.hits").inc(-1)

    def test_kind_collision_rejected(self):
        counter("repro.test.collide")
        with pytest.raises(ValueError, match="already registered"):
            gauge("repro.test.collide")


class TestGauges:
    def test_set_inc_dec(self):
        g = gauge("repro.test.depth")
        g.set(3)
        g.inc()
        g.inc(-2)
        assert g.value == 2


class TestHistograms:
    def test_bucketing_and_stats(self):
        h = histogram("repro.test.latency_seconds")
        for v in (0.001, 0.01, 0.01, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.021)
        assert h.mean == pytest.approx(5.021 / 4)
        assert sum(h.bucket_counts()) == 4
        data = h.to_dict()
        assert data["min"] == 0.001 and data["max"] == 5.0
        assert len(data["counts"]) == len(data["bounds"]) + 1

    def test_log_scale_default_bounds(self):
        # Three buckets per decade, 1e-7 .. 1e3.
        assert DEFAULT_BUCKET_BOUNDS[0] == pytest.approx(1e-7)
        assert DEFAULT_BUCKET_BOUNDS[-1] == pytest.approx(1e3)
        ratios = [
            b / a for a, b in zip(DEFAULT_BUCKET_BOUNDS, DEFAULT_BUCKET_BOUNDS[1:])
        ]
        assert all(r == pytest.approx(10 ** (1 / 3)) for r in ratios)

    def test_overflow_bucket(self):
        h = histogram("repro.test.overflow", bounds=(1.0, 10.0))
        h.observe(100.0)
        assert h.bucket_counts() == [0, 0, 1]

    def test_custom_bounds_sorted_and_validated(self):
        h = histogram("repro.test.custom", bounds=(10.0, 1.0))
        assert h.bounds == (1.0, 10.0)
        with pytest.raises(ValueError):
            Histogram("repro.test.empty", bounds=())

    def test_empty_histogram_to_dict(self):
        data = histogram("repro.test.idle").to_dict()
        assert data["count"] == 0 and data["min"] == 0.0 and data["max"] == 0.0


class TestRegistry:
    def test_name_validation(self):
        for bad in ("hits", "repro", "repro.", "repro.Upper.x", "other.store.hits"):
            with pytest.raises(ValueError, match="must match"):
                counter(bad)

    def test_get_metric_names_known_set(self):
        counter("repro.test.known")
        assert get_metric("repro.test.known").value == 0
        with pytest.raises(KeyError, match="repro.test.known"):
            get_metric("repro.test.unknown")

    def test_snapshot_shape(self):
        counter("repro.test.c").inc(2)
        gauge("repro.test.g").set(1.5)
        histogram("repro.test.h").observe(0.1)
        snap = snapshot()
        assert snap["repro.test.c"] == {"kind": "counter", "value": 2}
        assert snap["repro.test.g"] == {"kind": "gauge", "value": 1.5}
        assert snap["repro.test.h"]["kind"] == "histogram"
        assert "repro.test.c" in metric_names()

    def test_reset_in_place(self):
        # Modules cache metric objects; reset must zero the live object.
        c = counter("repro.test.cached")
        c.inc(9)
        reset_metrics()
        assert c.value == 0
        assert get_metric("repro.test.cached") is c

    def test_thread_safety(self):
        c = counter("repro.test.contended")
        h = histogram("repro.test.contended_h")

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000
        assert h.count == 8000


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        counter("repro.test.prom_hits").inc(3)
        gauge("repro.test.prom_depth").set(2.5)
        text = prometheus_text()
        assert "# TYPE repro_test_prom_hits counter" in text
        assert "repro_test_prom_hits 3" in text
        assert "# TYPE repro_test_prom_depth gauge" in text
        assert "repro_test_prom_depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        h = histogram("repro.test.prom_lat", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 100.0):
            h.observe(v)
        text = prometheus_text()
        lines = [ln for ln in text.splitlines() if "repro_test_prom_lat" in ln]
        assert "# TYPE repro_test_prom_lat histogram" in lines
        assert 'repro_test_prom_lat_bucket{le="0.1"} 1' in lines
        assert 'repro_test_prom_lat_bucket{le="1.0"} 3' in lines
        assert 'repro_test_prom_lat_bucket{le="10.0"} 3' in lines
        assert 'repro_test_prom_lat_bucket{le="+Inf"} 4' in lines
        assert "repro_test_prom_lat_count 4" in lines
        sums = [ln for ln in lines if ln.startswith("repro_test_prom_lat_sum ")]
        assert len(sums) == 1
        assert float(sums[0].split()[-1]) == pytest.approx(101.05)

    def test_exposition_parses_as_floats(self):
        # Every sample line must be "<name>[{labels}] <number>".
        counter("repro.test.parse").inc()
        histogram("repro.test.parse_h").observe(1e-9)
        for line in prometheus_text().splitlines():
            if line.startswith("#"):
                continue
            value = line.rsplit(" ", 1)[1]
            assert value == "+Inf" or not math.isnan(float(value))
