"""Tests for the §7.5 scheme-selection guidance API."""

import pytest

from repro.analytics.guidance import PRESERVABLE_PROPERTIES, recommend
from repro.compress.registry import make_scheme
from repro.graphs import generators as gen
from repro.graphs.weights import with_uniform_weights


class TestRecommend:
    def test_all_properties_have_rankings(self):
        for prop in PRESERVABLE_PROPERTIES:
            recs = recommend(prop)
            assert recs, prop
            assert all(r.rationale for r in recs)

    def test_specs_are_constructible(self):
        """Every recommended spec must parse through the registry."""
        for prop in PRESERVABLE_PROPERTIES:
            for rec in recommend(prop):
                scheme = make_scheme(rec.scheme_spec)
                assert scheme is not None

    def test_unknown_property(self):
        with pytest.raises(ValueError, match="unknown property"):
            recommend("chromatic_polynomial")

    def test_mst_ranking_prefers_max_weight_tr(self):
        recs = recommend("mst_weight")
        assert "max_weight" in recs[0].scheme_spec

    def test_triangle_free_graph_marks_tr_infeasible(self):
        road = gen.grid_2d(8, 8)
        recs = recommend("mst_weight", road)
        tr = recs[0]
        assert not tr.feasible
        assert "triangle-free" in tr.caveat

    def test_directed_graph_feasibility(self):
        g = gen.rmat(8, 4, seed=0, directed=True)
        recs = recommend("pagerank", g)
        by_spec = {r.scheme_spec.split("(")[0]: r for r in recs}
        assert by_spec["uniform"].feasible  # uniform supports directed
        # TR needs undirected graphs.
        tr = [r for r in recs if "TR" in r.scheme_spec][0]
        assert not tr.feasible

    def test_weighted_graph_caveat_for_spanner(self):
        g = with_uniform_weights(gen.erdos_renyi(50, m=120, seed=1), seed=0)
        recs = recommend("storage", g)
        spanner = [r for r in recs if r.scheme_spec.startswith("spanner")][0]
        assert spanner.feasible
        assert "weights" in spanner.caveat

    def test_parameters_flow_into_specs(self):
        recs = recommend("shortest_paths", p=0.3, k=42)
        assert any("k=42" in r.scheme_spec for r in recs)
        assert any("0.3" in r.scheme_spec for r in recs)

    def test_recommended_scheme_actually_preserves_cc(self):
        """End-to-end: the top CC recommendation preserves #CC."""
        from repro.algorithms.components import connected_components

        g = gen.powerlaw_cluster(300, 5, 0.6, seed=2)
        rec = recommend("connected_components", g)[0]
        assert rec.feasible
        sub = make_scheme(rec.scheme_spec).compress(g, seed=0).graph
        assert (
            connected_components(sub).num_components
            == connected_components(g).num_components
        )

    def test_recommended_scheme_preserves_mst_weight(self):
        from repro.algorithms.mst import kruskal

        g = with_uniform_weights(gen.powerlaw_cluster(300, 5, 0.6, seed=3), seed=1)
        rec = recommend("mst_weight", g)[0]
        assert rec.feasible
        sub = make_scheme(rec.scheme_spec).compress(g, seed=0).graph
        assert kruskal(sub).total_weight == pytest.approx(kruskal(g).total_weight)


class TestFamilyClassification:
    """The internal spec -> feasibility-family mapping (PR-5 coverage)."""

    def test_tr_spellings_map_to_tr(self):
        from repro.analytics.guidance import _family

        assert _family("EO-0.8-1-TR") == "tr"
        assert _family("0.5-1-TR") == "tr"
        assert _family("tr(p=0.5, variant=max_weight)") == "tr"

    def test_named_schemes_map_to_themselves(self):
        from repro.analytics.guidance import _family

        for head in ("spanner", "uniform", "spectral", "summarization",
                     "low_degree", "cut_sparsifier"):
            assert _family(f"{head}(x=1)") == head

    def test_every_ranked_spec_has_a_support_entry(self):
        """No recommendation silently falls back to 'supports anything'."""
        from repro.analytics.guidance import _RANKINGS, _SUPPORTS, _family

        for rankings in _RANKINGS.values():
            for template, _ in rankings:
                spec = template.format(p=0.5, k=4, eps=0.2)
                assert _family(spec) in _SUPPORTS, spec


class TestRankingStability:
    def test_repeated_calls_identical(self):
        for prop in PRESERVABLE_PROPERTIES:
            assert recommend(prop) == recommend(prop)

    def test_order_is_the_documented_table3_order(self):
        specs = [r.scheme_spec.split("(")[0] for r in recommend("pagerank")]
        assert specs == ["EO-0.8-1-TR", "spectral", "uniform"]

    def test_graph_feasibility_does_not_reorder(self):
        g = gen.grid_2d(6, 6)  # triangle-free: TR infeasible but still first
        bare = [r.scheme_spec for r in recommend("connected_components")]
        with_graph = [r.scheme_spec for r in recommend("connected_components", g)]
        assert bare == with_graph

    def test_properties_list_is_sorted_and_stable(self):
        assert PRESERVABLE_PROPERTIES == sorted(PRESERVABLE_PROPERTIES)
        assert len(PRESERVABLE_PROPERTIES) >= 10


class TestDegenerateInputs:
    def test_empty_graph(self):
        from repro.graphs.csr import CSRGraph

        for prop in PRESERVABLE_PROPERTIES:
            recs = recommend(prop, CSRGraph.empty(0))
            assert recs and all(isinstance(r.feasible, bool) for r in recs)

    def test_edgeless_graph_keeps_tr_feasible(self):
        """num_edges == 0 skips the triangle probe (nothing to reduce is
        not the same as provably triangle-free input data)."""
        from repro.graphs.csr import CSRGraph

        recs = recommend("connected_components", CSRGraph.empty(5))
        tr = [r for r in recs if "TR" in r.scheme_spec][0]
        assert tr.feasible

    def test_single_edge_graph_marks_tr_infeasible(self):
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(2, [0], [1])
        recs = recommend("connected_components", g)
        tr = [r for r in recs if "TR" in r.scheme_spec][0]
        assert not tr.feasible
        assert "triangle-free" in tr.caveat

    def test_directed_weighted_combination(self):
        g = with_uniform_weights(gen.rmat(6, 4, seed=0, directed=True), seed=1)
        recs = recommend("storage", g)
        spanner = [r for r in recs if r.scheme_spec.startswith("spanner")][0]
        assert not spanner.feasible
        assert "undirected" in spanner.caveat
