"""Tests for the §7.5 scheme-selection guidance API."""

import pytest

from repro.analytics.guidance import PRESERVABLE_PROPERTIES, recommend
from repro.compress.registry import make_scheme
from repro.graphs import generators as gen
from repro.graphs.weights import with_uniform_weights


class TestRecommend:
    def test_all_properties_have_rankings(self):
        for prop in PRESERVABLE_PROPERTIES:
            recs = recommend(prop)
            assert recs, prop
            assert all(r.rationale for r in recs)

    def test_specs_are_constructible(self):
        """Every recommended spec must parse through the registry."""
        for prop in PRESERVABLE_PROPERTIES:
            for rec in recommend(prop):
                scheme = make_scheme(rec.scheme_spec)
                assert scheme is not None

    def test_unknown_property(self):
        with pytest.raises(ValueError, match="unknown property"):
            recommend("chromatic_polynomial")

    def test_mst_ranking_prefers_max_weight_tr(self):
        recs = recommend("mst_weight")
        assert "max_weight" in recs[0].scheme_spec

    def test_triangle_free_graph_marks_tr_infeasible(self):
        road = gen.grid_2d(8, 8)
        recs = recommend("mst_weight", road)
        tr = recs[0]
        assert not tr.feasible
        assert "triangle-free" in tr.caveat

    def test_directed_graph_feasibility(self):
        g = gen.rmat(8, 4, seed=0, directed=True)
        recs = recommend("pagerank", g)
        by_spec = {r.scheme_spec.split("(")[0]: r for r in recs}
        assert by_spec["uniform"].feasible  # uniform supports directed
        # TR needs undirected graphs.
        tr = [r for r in recs if "TR" in r.scheme_spec][0]
        assert not tr.feasible

    def test_weighted_graph_caveat_for_spanner(self):
        g = with_uniform_weights(gen.erdos_renyi(50, m=120, seed=1), seed=0)
        recs = recommend("storage", g)
        spanner = [r for r in recs if r.scheme_spec.startswith("spanner")][0]
        assert spanner.feasible
        assert "weights" in spanner.caveat

    def test_parameters_flow_into_specs(self):
        recs = recommend("shortest_paths", p=0.3, k=42)
        assert any("k=42" in r.scheme_spec for r in recs)
        assert any("0.3" in r.scheme_spec for r in recs)

    def test_recommended_scheme_actually_preserves_cc(self):
        """End-to-end: the top CC recommendation preserves #CC."""
        from repro.algorithms.components import connected_components

        g = gen.powerlaw_cluster(300, 5, 0.6, seed=2)
        rec = recommend("connected_components", g)[0]
        assert rec.feasible
        sub = make_scheme(rec.scheme_spec).compress(g, seed=0).graph
        assert (
            connected_components(sub).num_components
            == connected_components(g).num_components
        )

    def test_recommended_scheme_preserves_mst_weight(self):
        from repro.algorithms.mst import kruskal

        g = with_uniform_weights(gen.powerlaw_cluster(300, 5, 0.6, seed=3), seed=1)
        rec = recommend("mst_weight", g)[0]
        assert rec.feasible
        sub = make_scheme(rec.scheme_spec).compress(g, seed=0).graph
        assert kruskal(sub).total_weight == pytest.approx(kruskal(g).total_weight)
