"""Tests for datasets, views, edge-list I/O, weights, properties, builder."""

import numpy as np
import pytest

from repro.graphs import datasets
from repro.graphs.builder import GraphBuilder
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import (
    iter_edge_rows,
    parse_edge_row,
    read_npz,
    read_text,
    storage_bytes,
    write_npz,
    write_text,
)
from repro.graphs.properties import degree_statistics, density, summarize
from repro.graphs.views import cluster_subgraphs, edge_subgraph, induced_subgraph
from repro.graphs.weights import (
    with_exponential_weights,
    with_uniform_weights,
    with_unit_weights,
)
from repro.graphs import generators as gen


class TestDatasets:
    def test_registry_nonempty(self):
        names = datasets.available()
        assert len(names) >= 30
        assert "s-cds" in names and "v-usa" in names and "h-wdc" in names

    def test_load_basic(self):
        g = datasets.load("s-you", seed=0)
        assert g.num_edges > 0
        g.validate()

    def test_fig5_trio_triangle_regimes(self):
        """The Fig. 5 graphs are selected by T/n: s-cds >> v-ewk > s-pok."""
        from repro.algorithms.triangles import count_triangles

        ratios = {}
        for name in ("s-cds", "s-pok", "v-ewk"):
            g = datasets.load(name, seed=0)
            ratios[name] = count_triangles(g) / g.n
        assert ratios["s-cds"] > ratios["v-ewk"] > ratios["s-pok"]

    def test_road_network_weighted_and_triangle_free(self):
        from repro.algorithms.triangles import count_triangles

        g = datasets.load("v-usa", seed=0)
        assert g.is_weighted
        assert count_triangles(g) == 0

    def test_web_crawls_directed(self):
        g = datasets.load("h-dgh", seed=0)
        assert g.directed

    def test_weighted_flag(self):
        g = datasets.load("s-you", seed=0, weighted=True)
        assert g.is_weighted

    def test_describe_and_paper_stats(self):
        spec = datasets.describe("s-cds")
        assert spec.paper_m == 15_000_000
        assert datasets.PAPER_STATS["s-pok"] == (1_600_000, 30_000_000)
        with pytest.raises(KeyError):
            datasets.describe("nope")

    def test_deterministic(self):
        a = datasets.load("s-pok", seed=1)
        b = datasets.load("s-pok", seed=1)
        assert np.array_equal(a.edge_src, b.edge_src)


class TestViews:
    def test_induced_subgraph_relabel(self, tiny):
        sub, ids = induced_subgraph(tiny, [0, 1, 2])
        assert sub.n == 3
        assert sub.num_edges == 3  # the triangle
        assert ids.tolist() == [0, 1, 2]

    def test_induced_subgraph_keep_ids(self, tiny):
        sub, ids = induced_subgraph(tiny, [0, 1, 2], relabel=False)
        assert sub.n == tiny.n
        assert sub.num_edges == 3

    def test_edge_subgraph(self, tiny):
        sub = edge_subgraph(tiny, [0, 1])
        assert sub.num_edges == 2
        assert sub.n == tiny.n

    def test_cluster_subgraphs_partition(self, er300):
        mapping = np.arange(er300.n) % 5
        seen = []
        for cid, members in cluster_subgraphs(er300, mapping):
            seen.extend(members.tolist())
            assert np.all(mapping[members] == cid)
        assert sorted(seen) == list(range(er300.n))

    def test_cluster_subgraphs_validation(self, er300):
        with pytest.raises(ValueError):
            list(cluster_subgraphs(er300, np.zeros(3, dtype=np.int64)))


class TestEdgeList:
    def test_text_roundtrip(self, tiny, tmp_path):
        path = tmp_path / "g.txt"
        write_text(tiny, path)
        back = read_text(path)
        assert back.n == tiny.n
        assert np.array_equal(back.edge_src, tiny.edge_src)

    def test_text_roundtrip_weighted(self, tiny, tmp_path):
        wg = tiny.with_weights(np.linspace(0.5, 2.5, 5))
        path = tmp_path / "w.txt"
        write_text(wg, path)
        back = read_text(path)
        assert back.is_weighted
        assert np.allclose(back.edge_weights, wg.edge_weights)

    def test_text_infers_n_without_header(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("0 3\n1 2\n")
        g = read_text(path)
        assert g.n == 4
        assert g.num_edges == 2

    def test_npz_roundtrip(self, tmp_path):
        g = gen.rmat(8, 4, seed=1, directed=True)
        path = tmp_path / "g.npz"
        write_npz(g, path)
        back = read_npz(path)
        assert back.directed
        assert np.array_equal(back.edge_src, g.edge_src)

    def test_storage_bytes_scales_with_edges(self, er300):
        half = er300.keep_edges(np.arange(er300.num_edges) < er300.num_edges // 2)
        assert storage_bytes(half) < storage_bytes(er300)


class TestEdgeListRobustness:
    """Real SNAP/KONECT dumps are messy; the reader must name offenders."""

    def test_blank_lines_crlf_and_percent_comments(self, tmp_path):
        path = tmp_path / "messy.txt"
        path.write_bytes(
            b"% KONECT header\r\n"
            b"\r\n"
            b"0 1\r\n"
            b"   \n"
            b"# plain comment\n"
            b"1 2\r\n"
        )
        g = read_text(path)
        assert g.n == 3 and g.num_edges == 2

    def test_too_few_fields_named(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("0 1\n7\n")
        with pytest.raises(ValueError, match=r"short.txt:2: malformed edge row '7'"):
            read_text(path)

    def test_too_many_fields_named(self, tmp_path):
        path = tmp_path / "wide.txt"
        path.write_text("0 1 2.0 extra\n")
        with pytest.raises(ValueError, match=r"wide.txt:1: .*4 fields"):
            read_text(path)

    def test_non_integer_endpoint_named(self, tmp_path):
        path = tmp_path / "alpha.txt"
        path.write_text("0 1\na b\n")
        with pytest.raises(ValueError, match=r"alpha.txt:2: .*must be integers"):
            read_text(path)

    def test_non_numeric_weight_named(self, tmp_path):
        path = tmp_path / "badw.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(ValueError, match=r"badw.txt:1: .*must be a number"):
            read_text(path)

    def test_mixed_weightedness_named_both_directions(self, tmp_path):
        gains = tmp_path / "gains.txt"
        gains.write_text("0 1\n1 2 2.5\n")
        with pytest.raises(ValueError, match=r"gains.txt:2: mixed"):
            read_text(gains)
        loses = tmp_path / "loses.txt"
        loses.write_text("0 1 2.5\n1 2\n")
        with pytest.raises(ValueError, match=r"loses.txt:2: mixed"):
            read_text(loses)

    def test_iter_edge_rows_linenos_point_into_the_file(self):
        rows = list(
            iter_edge_rows(["# c\n", "\n", "0 1\n", "% k\n", "2 3\r\n"])
        )
        assert rows == [(3, "0 1"), (5, "2 3")]

    def test_parse_edge_row_weight_optional(self):
        assert parse_edge_row("4 5") == (4, 5, None)
        assert parse_edge_row("4 5 0.25") == (4, 5, 0.25)


class TestWeights:
    def test_uniform_range(self, er300):
        wg = with_uniform_weights(er300, 2.0, 3.0, seed=0)
        assert np.all((wg.edge_weights >= 2.0) & (wg.edge_weights < 3.0))
        with pytest.raises(ValueError):
            with_uniform_weights(er300, 3.0, 2.0)

    def test_exponential_positive(self, er300):
        wg = with_exponential_weights(er300, 2.0, seed=0)
        assert np.all(wg.edge_weights > 0)
        with pytest.raises(ValueError):
            with_exponential_weights(er300, -1.0)

    def test_unit(self, er300):
        wg = with_unit_weights(er300)
        assert wg.total_weight() == er300.num_edges


class TestProperties:
    def test_summarize_fields(self, plc300):
        from repro.algorithms.triangles import count_triangles

        s = summarize(plc300)
        assert s.num_vertices == plc300.n
        assert s.num_triangles == count_triangles(plc300)
        assert s.triangles_per_vertex == pytest.approx(s.num_triangles / s.num_vertices)
        assert "T/n" in s.as_dict()

    def test_density(self):
        assert density(gen.complete_graph(5)) == pytest.approx(1.0)
        assert density(CSRGraph.empty(1)) == 0.0

    def test_degree_statistics(self, star20):
        stats = degree_statistics(star20)
        assert stats["max"] == 19
        assert stats["median"] == 1.0


class TestBuilder:
    def test_incremental_build(self):
        b = GraphBuilder(5)
        b.add_edge(0, 1)
        b.add_edge(1, 2)
        b.add_edges([2, 3], [3, 4])
        g = b.build()
        assert len(b) == 4
        assert g.num_edges == 4

    def test_weighted_builder(self):
        b = GraphBuilder(3, weighted=True)
        b.add_edge(0, 1, weight=2.0)
        b.add_edges([1], [2], weights=[3.0])
        g = b.build()
        assert g.total_weight() == 5.0

    def test_growth_beyond_initial_capacity(self):
        b = GraphBuilder(100)
        src = np.repeat(np.arange(99), 1)
        b.add_edges(src, src + 1)
        for i in range(50):
            b.add_edge(0, i + 2)
        g = b.build()
        assert g.num_edges > 99

    def test_dedup_on_build(self):
        b = GraphBuilder(3, weighted=True)
        b.add_edge(0, 1, 1.0)
        b.add_edge(1, 0, 2.0)
        assert b.build(dedup="sum").total_weight() == 3.0
