"""Property-based tests of CSR structural invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.csr import CSRGraph


@st.composite
def raw_edge_lists(draw, max_n=30, max_m=120):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, src, dst


@given(raw_edge_lists())
@settings(max_examples=80, deadline=None)
def test_from_edges_invariants(data):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    g.validate()
    # No duplicates, no self-loops, canonical orientation.
    assert np.all(g.edge_src < g.edge_dst)
    keys = g.edge_src * np.int64(n) + g.edge_dst
    assert len(np.unique(keys)) == g.num_edges
    # Degree sum = 2m.
    assert int(g.degrees.sum()) == 2 * g.num_edges
    # Every input non-loop pair is present.
    for u, v in zip(src, dst):
        if u != v:
            assert g.has_edge(u, v)


@given(raw_edge_lists(), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_keep_edges_is_subgraph(data, seed):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    rng = np.random.default_rng(seed)
    mask = rng.random(g.num_edges) < 0.5
    sub = g.keep_edges(mask)
    sub.validate()
    assert sub.n == g.n
    assert sub.num_edges == int(mask.sum())
    # Subgraph property: every kept edge exists in the original.
    for u, v in zip(sub.edge_src, sub.edge_dst):
        assert g.has_edge(int(u), int(v))
    # Degrees can only drop.
    assert np.all(sub.degrees <= g.degrees)


@given(raw_edge_lists())
@settings(max_examples=50, deadline=None)
def test_edge_id_cross_reference(data):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    for v in range(min(g.n, 10)):
        for u, e in zip(g.neighbors(v), g.incident_edge_ids(v)):
            assert {int(g.edge_src[e]), int(g.edge_dst[e])} == {v, int(u)}


@given(raw_edge_lists(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_remove_vertices_consistency(data, seed):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    rng = np.random.default_rng(seed)
    victims = np.flatnonzero(rng.random(n) < 0.3)
    kept_ids = g.remove_vertices(victims)
    relabeled = g.remove_vertices(victims, relabel=True)
    assert kept_ids.num_edges == relabeled.num_edges
    assert kept_ids.n == g.n
    assert relabeled.n == g.n - len(victims)
    # No surviving edge touches a victim.
    gone = set(victims.tolist())
    for u, v in zip(kept_ids.edge_src, kept_ids.edge_dst):
        assert int(u) not in gone and int(v) not in gone


@given(raw_edge_lists())
@settings(max_examples=40, deadline=None)
def test_scipy_roundtrip_degrees(data):
    n, src, dst = data
    g = CSRGraph.from_edges(n, src, dst)
    mat = g.to_scipy()
    row_nnz = np.diff(mat.indptr)
    assert np.array_equal(row_nnz, g.degrees)
