"""Tests for the analytics subsystem: evaluation harness, sweeps, reports."""

import numpy as np
import pytest

from repro.analytics.evaluation import (
    AlgorithmSpec,
    default_algorithms,
    evaluate_scheme,
)
from repro.analytics.report import format_table, write_csv
from repro.analytics.tradeoff import sweep
from repro.compress.uniform import RandomUniformSampling
from repro.compress.spanner import Spanner


class TestEvaluateScheme:
    def test_default_battery_records(self, plc300):
        records, compressed = evaluate_scheme(
            plc300, RandomUniformSampling(0.5), seed=0
        )
        names = {r.algorithm for r in records}
        assert names == {"bfs", "cc", "pr", "tc", "tc_per_vertex"}
        assert compressed.num_edges < plc300.num_edges
        by_name = {r.algorithm: r for r in records}
        assert by_name["pr"].metric_name == "kl_divergence"
        assert by_name["pr"].metric_value >= 0
        assert by_name["cc"].metric_name == "relative_change"
        assert by_name["tc_per_vertex"].metric_name == "reordered_neighbor_pairs"
        assert by_name["bfs"].metric_name == "critical_edge_preservation"
        assert 0 <= by_name["bfs"].metric_value <= 1.5

    def test_identity_scheme_perfect_metrics(self, plc300):
        class Identity:
            def compress(self, g, *, seed=None):
                from repro.compress.base import CompressionResult

                return CompressionResult(graph=g, original=g, scheme="id", params={})

        records, _ = evaluate_scheme(plc300, Identity(), seed=0)
        by_name = {r.algorithm: r for r in records}
        assert by_name["pr"].metric_value == pytest.approx(0.0, abs=1e-9)
        assert by_name["cc"].metric_value == 0.0
        assert by_name["tc_per_vertex"].metric_value == 0.0
        assert by_name["bfs"].metric_value == pytest.approx(1.0)

    def test_custom_algorithm_kinds(self, plc300):
        specs = [
            AlgorithmSpec("edges", lambda g: g.num_edges, "scalar"),
        ]
        records, _ = evaluate_scheme(plc300, RandomUniformSampling(0.5), specs, seed=1)
        assert len(records) == 1
        assert records[0].metric_value == pytest.approx(-0.5, abs=0.1)

    def test_unknown_kind_rejected(self, plc300):
        specs = [AlgorithmSpec("x", lambda g: 0, "tensor")]
        with pytest.raises(ValueError):
            evaluate_scheme(plc300, RandomUniformSampling(0.5), specs)

    def test_vector_padding_after_collapse(self, plc300):
        from repro.compress.triangle_reduction import TriangleReduction

        records, _ = evaluate_scheme(
            plc300, TriangleReduction(0.5, variant="collapse"), seed=2
        )
        # Must not raise despite the smaller vertex set.
        assert any(r.algorithm == "tc_per_vertex" for r in records)


class TestSweep:
    def test_uniform_sweep_monotone_ratio(self, plc300):
        rows = sweep(
            plc300,
            lambda p: RandomUniformSampling(p),
            [0.2, 0.5, 0.9],
            algorithms=[AlgorithmSpec("cc", lambda g: 1, "scalar")],
            seed=0,
        )
        ratios = {r.parameter: r.compression_ratio for r in rows}
        assert ratios[0.2] < ratios[0.5] < ratios[0.9]

    def test_spanner_sweep(self, plc300):
        rows = sweep(
            plc300,
            lambda k: Spanner(k),
            [2, 8],
            algorithms=[AlgorithmSpec("m", lambda g: g.num_edges, "scalar")],
            seed=1,
        )
        assert len(rows) == 2
        assert all(0 < r.compression_ratio <= 1 for r in rows)

    def test_repeats_validation(self, plc300):
        with pytest.raises(ValueError):
            sweep(plc300, RandomUniformSampling, [0.5], repeats=0)


class TestReport:
    def test_format_table(self):
        text = format_table(
            [["s-pok", 0.5, 0.123456], ["v-usa", 1.0, 2.0e-6]],
            ["graph", "p", "kl"],
            title="Table 5",
        )
        assert "Table 5" in text
        assert "s-pok" in text
        assert "kl" in text
        # Small floats rendered in scientific notation.
        assert "2.000e-06" in text

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out" / "rows.csv"
        write_csv([[1, "a"], [2, "b"]], ["id", "name"], path)
        content = path.read_text().strip().splitlines()
        assert content[0] == "id,name"
        assert len(content) == 3
