"""Tests for store-backed and parallel Session.grid/sweep execution:
equality with the in-memory path, zero-recompute warm replays, and seed
plumbing."""

import pytest

from repro.analytics.session import Session
from repro.runner.store import ArtifactStore

SCHEMES = ["uniform(p=0.5)", "spanner(k=8)"]
ALGS = ["pr", "cc", "sssp"]


def _comparable(table):
    """The deterministic face of a table (drop wall-clock noise)."""
    return [
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in table
    ]


class TestStoreBackedGrid:
    def test_equals_in_memory_path(self, plc300, tmp_path):
        expected = Session(plc300, seed=1).grid(SCHEMES, ALGS)
        store = ArtifactStore(tmp_path / "store")
        got = Session(plc300, seed=1, store=store).grid(SCHEMES, ALGS)
        assert _comparable(got) == _comparable(expected)

    def test_warm_store_recomputes_nothing(self, plc300, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = Session(plc300, seed=1, store=store)
        expected = cold.grid(SCHEMES, ALGS)
        assert cold.last_grid_perf["cache_misses"] == len(expected)

        warm = Session(plc300, seed=1, store=ArtifactStore(tmp_path / "store"))
        got = warm.grid(SCHEMES, ALGS)
        assert _comparable(got) == _comparable(expected)
        # The acceptance guarantee: zero recomputation on a warm store —
        # every cell is a cache hit, and the session never ran a baseline.
        assert warm.last_grid_perf["cache_hits"] == len(expected)
        assert warm.last_grid_perf["cache_misses"] == 0
        assert warm.baseline_computations == 0
        # Even the timings replay byte-identically from the store.
        assert [c.compressed_seconds for c in got] == [
            c.compressed_seconds for c in expected
        ]

    def test_different_seed_misses(self, plc300, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        session = Session(plc300, seed=1, store=store)
        session.grid(SCHEMES, ["pr"], ["kl"])
        session.grid(SCHEMES, ["pr"], ["kl"], seed=2)
        assert session.last_grid_perf["cache_misses"] == len(SCHEMES)

    def test_surface_spellings_share_cells(self, plc300, tmp_path):
        # "pr" (battery short name) and "pagerank" (registry name) bind to
        # one canonical spec, so the store replays across spellings while
        # each call keeps its own display label.
        store = ArtifactStore(tmp_path / "store")
        session = Session(plc300, seed=1, store=store)
        short = session.grid(SCHEMES, ["pr"], ["kl"])
        long = session.grid(SCHEMES, ["pagerank(iterations=100)"], ["kl"])
        assert session.last_grid_perf["cache_hits"] == len(SCHEMES)
        assert [c.value for c in long] == [c.value for c in short]
        assert short.algorithms() == ["pr"]
        assert long.algorithms() == ["pagerank(max_iterations=100)"]

    def test_legacy_callables_rejected(self, plc300, tmp_path):
        from repro.analytics.evaluation import AlgorithmSpec

        session = Session(plc300, seed=1, store=ArtifactStore(tmp_path / "s"))
        with pytest.raises(ValueError, match="registry algorithms"):
            session.grid(SCHEMES, [AlgorithmSpec("edges", lambda g: g.num_edges, "scalar")])

    def test_kernel_path_rejected(self, plc300, tmp_path):
        session = Session(plc300, seed=1, store=ArtifactStore(tmp_path / "s"))
        with pytest.raises(ValueError, match="via='fast'"):
            session.grid(SCHEMES, ["pr"], via="kernels")

    def test_store_accepts_path_surface(self, plc300, tmp_path):
        session = Session(plc300, seed=1, store=tmp_path / "store")
        assert isinstance(session.store, ArtifactStore)
        session.grid(SCHEMES, ["cc"])
        assert len(session.store) == len(SCHEMES)


class TestParallelGrid:
    def test_parallel_equals_sequential(self, plc300):
        expected = Session(plc300, seed=1).grid(SCHEMES, ALGS)
        got = Session(plc300, seed=1, jobs=2).grid(SCHEMES, ALGS)
        assert _comparable(got) == _comparable(expected)

    def test_parallel_store_backed_round_trip(self, plc300, tmp_path):
        expected = Session(plc300, seed=1).grid(SCHEMES, ALGS)
        store = ArtifactStore(tmp_path / "store")
        cold = Session(plc300, seed=1, store=store, jobs=2)
        assert _comparable(cold.grid(SCHEMES, ALGS)) == _comparable(expected)
        # Warm parallel run: replay only, no pool work needed.
        warm = Session(
            plc300, seed=1, store=ArtifactStore(tmp_path / "store"), jobs=2
        )
        assert _comparable(warm.grid(SCHEMES, ALGS)) == _comparable(expected)
        assert warm.last_grid_perf["cache_misses"] == 0

    def test_parallel_respects_session_defaults(self, plc300):
        # bfs_root/pr_iterations travel to the workers.
        expected = Session(plc300, seed=1, bfs_root=3, pr_iterations=17).grid(
            SCHEMES, ["bfs", "pr"]
        )
        got = Session(plc300, seed=1, bfs_root=3, pr_iterations=17, jobs=2).grid(
            SCHEMES, ["bfs", "pr"]
        )
        assert _comparable(got) == _comparable(expected)


class TestSeedPlumbing:
    def test_grid_records_resolved_seed(self, plc300):
        table = Session(plc300, seed=5).grid(SCHEMES, ["cc"])
        assert {c.seed for c in table} == {5}
        table = Session(plc300, seed=5).grid(SCHEMES, ["cc"], seed=9)
        assert {c.seed for c in table} == {9}

    def test_compressed_run_carries_seed(self, plc300):
        session = Session(plc300, seed=5)
        assert session.compress("uniform(p=0.5)").seed == 5
        assert session.compress("uniform(p=0.5)", seed=11).seed == 11

    def test_sweep_rows_record_cell_seed(self, plc300):
        rows = Session(plc300, seed=4).sweep(SCHEMES, repeats=2)
        # Each row's seed is the seed of its winning repeat — one of the
        # two cell seeds actually applied.
        assert set(r.seed for r in rows) <= {4, 5}
        assert all(r.seed is not None for r in rows)

    def test_store_backed_sweep_matches_values(self, plc300, tmp_path):
        expected = Session(plc300, seed=4).sweep(SCHEMES)
        store = ArtifactStore(tmp_path / "store")
        got = Session(plc300, seed=4, store=store).sweep(SCHEMES)
        key = lambda rows: [
            (r.parameter, r.algorithm, r.scheme_spec, r.metric_name,
             r.metric_value, r.compression_ratio, r.seed)
            for r in rows
        ]
        assert key(got) == key(expected)

    def test_score_cells_public_surface(self, plc300):
        session = Session(plc300, seed=2)
        run = session.compress("uniform(p=0.5)")
        cells = session.score_cells(run, "pr", ["kl", "l2"])
        assert [c.metric for c in cells] == ["kl_divergence", "l2_distance"]
        assert all(c.seed == 2 for c in cells)
        with pytest.raises(ValueError, match="does not apply"):
            session.score_cells(run, "cc", ["kl"])


class TestWorkerCompressionCache:
    """Regression pin for the `_compute_cell` run-cache semantics: the
    cache holds exactly one (scheme, seed) compression and is evicted on
    ANY key change — a new seed of the same scheme evicts too.  Under the
    scheme-major task order the scheduler emits (seeds grouped within a
    scheme), every (scheme, seed) pair therefore compresses exactly once
    per process."""

    def _counting(self, session):
        calls = []
        real = session.compress

        def compress(scheme, seed=None, **kwargs):
            calls.append((scheme, seed))
            return real(scheme, seed=seed, **kwargs)

        session.compress = compress
        return calls

    def test_one_compression_per_scheme_seed_scheme_major(self, plc300):
        from repro.runner.parallel import _compute_cell

        session = Session(plc300, seed=1)
        calls = self._counting(session)
        runs: dict = {}
        # Scheme-major with seeds grouped: the order the scheduler emits.
        for scheme in SCHEMES:
            for seed in (1, 2):
                for alg in ("pagerank", "cc"):
                    task = {
                        "scheme": scheme,
                        "seed": seed,
                        "algorithm": alg,
                        "metrics": (),
                    }
                    _compute_cell(session, runs, task)
        # 2 schemes x 2 seeds = 4 compressions for 8 tasks; no pair twice.
        assert len(calls) == len(SCHEMES) * 2
        assert len(set(calls)) == len(calls)
        # The cache never grows past the single current compression.
        assert len(runs) == 1

    def test_seed_change_evicts_like_scheme_change(self, plc300):
        from repro.runner.parallel import _compute_cell

        session = Session(plc300, seed=1)
        calls = self._counting(session)
        runs: dict = {}
        # Non-grouped order: revisiting a (scheme, seed) after the cache
        # moved on recompresses — this is the documented (and bounded-
        # memory) behavior the scheduler's ordering is designed around.
        order = [(SCHEMES[0], 1), (SCHEMES[0], 2), (SCHEMES[0], 1)]
        for scheme, seed in order:
            _compute_cell(
                session,
                runs,
                {"scheme": scheme, "seed": seed, "algorithm": "pagerank",
                 "metrics": ()},
            )
        assert len(calls) == 3

    def test_store_backed_inline_grid_compresses_each_scheme_once(
        self, plc300, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        session = Session(plc300, seed=1, store=store)
        calls = self._counting(session)
        session.grid(SCHEMES, ["pr", "cc"], seed=1)
        # 2 schemes x 2 algorithms = 4 tasks, but one compression per
        # scheme: the run cache carries across same-scheme tasks.
        assert len(calls) == len(SCHEMES)
