"""Empirical verification of the Table 3 bounds (§6).

Each test compresses real (synthetic) graphs and checks the corresponding
:mod:`repro.theory.bounds` predicate — the library-level realization of
"empirical analyses follow our theoretical predictions" (§7.5).
"""

import numpy as np
import pytest

from repro.algorithms.coloring import coloring_number
from repro.algorithms.components import connected_components
from repro.algorithms.independent_set import greedy_mis
from repro.algorithms.matching import maximum_matching_size
from repro.algorithms.mst import kruskal
from repro.algorithms.paths import pairwise_distance
from repro.algorithms.spectrum import quadratic_form_ratio_bounds
from repro.algorithms.triangles import count_triangles
from repro.compress.spanner import Spanner
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.uniform import RandomUniformSampling
from repro.compress.vertex_filters import LowDegreeVertexRemoval
from repro.graphs import generators as gen
from repro.graphs.weights import with_uniform_weights
from repro.theory import bounds


@pytest.fixture(scope="module")
def graph():
    return gen.powerlaw_cluster(400, 6, 0.6, seed=17)


class TestSubgraphMonotonicity:
    """Footnote invariants: subgraph-producing schemes never increase m, T,
    degrees, matchings; never decrease components or distances."""

    @pytest.mark.parametrize(
        "scheme",
        [
            RandomUniformSampling(0.5),
            SpectralSparsifier(0.5),
            TriangleReduction(0.7),
            Spanner(4),
        ],
        ids=["uniform", "spectral", "tr", "spanner"],
    )
    def test_all_monotone(self, graph, scheme):
        sub = scheme.compress(graph, seed=3).graph
        assert bounds.subgraph_monotone_edges(graph.num_edges, sub.num_edges)
        assert bounds.subgraph_monotone_triangles(
            count_triangles(graph), count_triangles(sub)
        )
        assert bounds.subgraph_monotone_max_degree(
            int(graph.degrees.max()), int(sub.degrees.max())
        )
        assert bounds.subgraph_monotone_components(
            connected_components(graph).num_components,
            connected_components(sub).num_components,
        )
        assert bounds.subgraph_monotone_matching(
            maximum_matching_size(graph), maximum_matching_size(sub)
        )
        d0 = pairwise_distance(graph, 0, graph.n - 1)
        d1 = pairwise_distance(sub, 0, graph.n - 1)
        assert bounds.subgraph_monotone_path(d0, d1)


class TestUniformRow:
    """Table 3 states its p as the REMOVAL probability; the scheme's
    constructor takes the KEEP probability (§4.2.2's kernel), so every
    bound below receives ``1 - keep``."""

    def test_edge_expectation(self, graph):
        keep = 0.4
        sub = RandomUniformSampling(keep).compress(graph, seed=1).graph
        assert bounds.uniform_edges(graph.num_edges, sub.num_edges, 1 - keep)

    def test_triangle_expectation(self, graph):
        keep = 0.7
        t0 = count_triangles(graph)
        counts = [
            count_triangles(RandomUniformSampling(keep).compress(graph, seed=s).graph)
            for s in range(5)
        ]
        assert bounds.uniform_triangles(t0, float(np.mean(counts)), 1 - keep, slack=2.0)

    def test_components_bound(self, graph):
        keep = 0.7
        sub = RandomUniformSampling(keep).compress(graph, seed=2).graph
        assert bounds.uniform_components(
            connected_components(graph).num_components,
            connected_components(sub).num_components,
            graph.num_edges,
            sub.num_edges,
        )

    def test_matching_bound(self, graph):
        keep = 0.5
        mc0 = maximum_matching_size(graph)
        sizes = [
            maximum_matching_size(RandomUniformSampling(keep).compress(graph, seed=s).graph)
            for s in range(3)
        ]
        assert bounds.uniform_matching(mc0, float(np.mean(sizes)), 1 - keep, slack=1.1)

    def test_coloring_bound(self, graph):
        keep = 0.5
        cg0 = coloring_number(graph)
        cg1 = coloring_number(RandomUniformSampling(keep).compress(graph, seed=4).graph)
        assert bounds.uniform_coloring(cg0, cg1, 1 - keep, slack=1.0)

    def test_max_degree(self, graph):
        keep = 0.5
        sub = RandomUniformSampling(keep).compress(graph, seed=5).graph
        assert bounds.uniform_max_degree(
            int(graph.degrees.max()), int(sub.degrees.max()), 1 - keep
        )

    def test_independent_set(self, graph):
        keep = 0.5
        sub = RandomUniformSampling(keep).compress(graph, seed=6).graph
        assert bounds.uniform_independent_set(
            len(greedy_mis(graph)), len(greedy_mis(sub)), graph.num_edges, sub.num_edges
        )


class TestSpectralRow:
    def test_components_preserved(self, graph):
        sub = SpectralSparsifier(0.8).compress(graph, seed=0).graph
        assert bounds.spectral_components(
            connected_components(graph).num_components,
            connected_components(sub).num_components,
        )

    def test_max_degree(self, graph):
        sub = SpectralSparsifier(0.5).compress(graph, seed=1).graph
        assert bounds.spectral_max_degree(int(graph.degrees.max()), int(sub.degrees.max()), 1.0)

    def test_quadratic_form(self, graph):
        sub = SpectralSparsifier(0.9).compress(graph, seed=2).graph
        lo, hi = quadratic_form_ratio_bounds(graph, sub, num_probes=32, seed=0)
        assert bounds.spectral_quadratic_form(lo, hi, epsilon=0.75)


class TestSpannerRow:
    def test_edge_budget(self, graph):
        for k in (2, 4, 8):
            sub = Spanner(k).compress(graph, seed=1).graph
            assert bounds.spanner_edges(graph.n, sub.num_edges, k)

    def test_components_exact(self, graph):
        sub = Spanner(8).compress(graph, seed=2).graph
        assert bounds.spanner_components(
            connected_components(graph).num_components,
            connected_components(sub).num_components,
        )

    def test_stretch(self, graph):
        k = 4
        sub = Spanner(k).compress(graph, seed=3).graph
        rng = np.random.default_rng(0)
        for _ in range(10):
            u, v = rng.integers(0, graph.n, size=2)
            d0 = pairwise_distance(graph, int(u), int(v))
            d1 = pairwise_distance(sub, int(u), int(v))
            assert bounds.spanner_distance_stretch(d0, d1, k)

    def test_triangles(self, graph):
        for k in (2, 8):
            sub = Spanner(k).compress(graph, seed=4).graph
            assert bounds.spanner_triangles(graph.n, count_triangles(sub), k)

    def test_coloring(self, graph):
        from repro.algorithms.coloring import greedy_coloring

        k = 4
        sub = Spanner(k).compress(graph, seed=5).graph
        colors = greedy_coloring(sub, "degeneracy").num_colors
        assert bounds.spanner_coloring(graph.n, colors, k)


class TestEOTRRow:
    def test_per_vertex_degree_edge_disjoint(self):
        """Table 3's degree cell assumes edge-disjoint triangles (§6.1:
        "a vertex of degree d' is contained in at most d'/2 edge-disjoint
        triangles").  The friendship graph — a hub whose k triangles share
        only the hub — is the exact worst case: the hub loses <= d/2."""
        import numpy as np
        from repro.graphs.csr import CSRGraph

        k = 12  # triangles at the hub
        src, dst = [], []
        for i in range(k):
            a, b = 2 * i + 1, 2 * i + 2
            src += [0, 0, a]
            dst += [a, b, b]
        g = CSRGraph.from_edges(2 * k + 1, src, dst)
        for seed in range(5):
            sub = TriangleReduction(1.0, variant="edge_once").compress(g, seed=seed).graph
            assert bounds.eo_tr_vertex_degree(g.degrees, sub.degrees)
            assert bounds.eo_tr_max_degree(int(g.degrees.max()), int(sub.degrees.max()))

    def test_matching(self, graph):
        mc0 = maximum_matching_size(graph)
        sizes = [
            maximum_matching_size(
                TriangleReduction(1.0, variant="edge_once").compress(graph, seed=s).graph
            )
            for s in range(3)
        ]
        assert bounds.eo_tr_matching(mc0, float(np.mean(sizes)), slack=1.05)

    def test_coloring(self, graph):
        cg0 = coloring_number(graph)
        cg1 = coloring_number(
            TriangleReduction(1.0, variant="edge_once").compress(graph, seed=2).graph
        )
        assert bounds.eo_tr_coloring(cg0, cg1)

    def test_components(self, graph):
        sub = TriangleReduction(0.8, variant="edge_once").compress(graph, seed=3).graph
        assert bounds.eo_tr_components(
            connected_components(graph).num_components,
            connected_components(sub).num_components,
        )

    def test_shortest_path(self, graph):
        p = 0.8
        sub = TriangleReduction(p, variant="edge_once").compress(graph, seed=4).graph
        d0 = pairwise_distance(graph, 0, graph.n - 1)
        d1 = pairwise_distance(sub, 0, graph.n - 1)
        assert bounds.eo_tr_shortest_path(d0, d1, p, graph.n)

    def test_independent_set(self, graph):
        p = 0.8
        sub = TriangleReduction(p, variant="edge_once").compress(graph, seed=5).graph
        assert bounds.eo_tr_independent_set(
            len(greedy_mis(graph)), len(greedy_mis(sub)), p, count_triangles(graph)
        )

    def test_mst_weight_max_weight_variant(self, graph):
        wg = with_uniform_weights(graph, seed=9)
        sub = TriangleReduction(1.0, variant="max_weight").compress(wg, seed=6).graph
        assert bounds.tr_mst_weight(
            kruskal(wg).total_weight, kruskal(sub).total_weight
        )


class TestLowDegreeRow:
    def test_counts(self):
        # A clique with pendant leaves: removal drops exactly the leaves.
        core = gen.complete_graph(8)
        import numpy as np
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(
            12,
            np.concatenate([core.edge_src, [0, 1, 2, 3]]),
            np.concatenate([core.edge_dst, [8, 9, 10, 11]]),
        )
        res = LowDegreeVertexRemoval(relabel=True).compress(g)
        assert bounds.low_degree_counts(g.n, g.num_edges, res.graph.n, res.graph.num_edges, 4)

    def test_triangles_preserved(self, graph):
        res = LowDegreeVertexRemoval().compress(graph)
        assert bounds.low_degree_triangles(
            count_triangles(graph), count_triangles(res.graph)
        )

    def test_matching_and_coloring(self, graph):
        res = LowDegreeVertexRemoval().compress(graph)
        k = res.extras["vertices_removed"]
        assert bounds.low_degree_matching(
            maximum_matching_size(graph), maximum_matching_size(res.graph), k
        )
        assert bounds.low_degree_coloring(
            coloring_number(graph), coloring_number(res.graph)
        )


class TestSummaryRow:
    def test_edges_within_2_eps_m(self, graph):
        eps = 0.3
        res = LossySummarization(eps).compress(graph, seed=1)
        assert bounds.summary_edges(graph.num_edges, res.graph.num_edges, eps)

    def test_neighborhood_error(self, graph):
        eps = 0.5
        res = LossySummarization(eps).compress(graph, seed=2)
        assert bounds.summary_neighborhoods(graph, res.graph, eps)


class TestPathLengthRows:
    """Diameter / average-path cells of Table 3."""

    def test_spanner_diameter_and_avg_path(self, graph):
        from repro.algorithms.paths import path_length_stats

        base = path_length_stats(graph, num_sources=24, seed=0)
        for k in (2, 8):
            sub = Spanner(k).compress(graph, seed=1).graph
            comp = path_length_stats(sub, num_sources=24, seed=0)
            assert bounds.spanner_diameter(
                base.eccentricity_max, comp.eccentricity_max, k
            )
            assert bounds.spanner_avg_path(
                base.average_length, comp.average_length, k
            )

    def test_eo_tr_diameter(self, graph):
        from repro.algorithms.paths import path_length_stats

        p = 0.9
        base = path_length_stats(graph, num_sources=24, seed=1)
        sub = TriangleReduction(p, variant="edge_once").compress(graph, seed=2).graph
        comp = path_length_stats(sub, num_sources=24, seed=1)
        assert bounds.eo_tr_diameter(
            base.eccentricity_max, comp.eccentricity_max, p, graph.n
        )

    def test_low_degree_diameter(self):
        from repro.algorithms.paths import exact_diameter

        # A path with pendant leaves at both ends: removal shortens D by 2.
        g = gen.path_graph(12)
        d0 = exact_diameter(g)
        res = LowDegreeVertexRemoval(relabel=True).compress(g)
        d1 = exact_diameter(res.graph)
        assert bounds.low_degree_diameter(d0, d1)
        assert d1 == d0 - 2
