"""Shared fixtures: small deterministic graphs spanning the structural
regimes the paper's evaluation varies (triangle-rich, power-law, grid/road,
random)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.graphs.weights import with_uniform_weights


@pytest.fixture
def tiny() -> CSRGraph:
    """The 5-vertex example graph used in hand-checked assertions.

        0 - 1
        | / |      triangle (0,1,2), square side (1,3), pendant (3,4)
        2   3 - 4
    """
    return CSRGraph.from_edges(5, [0, 0, 1, 1, 3], [1, 2, 2, 3, 4])


@pytest.fixture
def er300() -> CSRGraph:
    return gen.erdos_renyi(300, m=900, seed=11)


@pytest.fixture
def plc300() -> CSRGraph:
    """Triangle-rich power-law cluster graph (the s-cds regime)."""
    return gen.powerlaw_cluster(300, 5, 0.7, seed=7)


@pytest.fixture
def grid10() -> CSRGraph:
    """Triangle-free grid (the road-network regime)."""
    return gen.grid_2d(10, 10)


@pytest.fixture
def weighted300(er300) -> CSRGraph:
    return with_uniform_weights(er300, 1.0, 10.0, seed=5)


@pytest.fixture
def star20() -> CSRGraph:
    return gen.star_graph(20)


def to_networkx(g: CSRGraph):
    import networkx as nx

    nxg = nx.DiGraph() if g.directed else nx.Graph()
    nxg.add_nodes_from(range(g.n))
    if g.is_weighted:
        nxg.add_weighted_edges_from(
            zip(g.edge_src.tolist(), g.edge_dst.tolist(), g.edge_weights.tolist())
        )
    else:
        nxg.add_edges_from(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    return nxg


@pytest.fixture
def nx_of():
    return to_networkx
