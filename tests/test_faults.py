"""Tests for the deterministic fault-injection machinery: spec/plan
validation and transport, firing schedules (start/times), cross-process
budgets via token files, environment propagation, and the chaos
scenario builders."""

import json
import os
import subprocess
import sys

import pytest

from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    available_scenarios,
    build_scenario,
    clear_plan,
    fault_point,
    injected_faults,
    install_plan,
    site_calls,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_plan()
    yield
    clear_plan()


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("a.site")
        assert spec.mode == "raise" and spec.times == 1 and spec.start == 0

    def test_round_trip(self):
        spec = FaultSpec("a.site", mode="hang", times=3, start=2, delay=0.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec("")
        with pytest.raises(ValueError, match="mode"):
            FaultSpec("a.site", mode="explode")
        with pytest.raises(ValueError, match="times"):
            FaultSpec("a.site", times=0)
        with pytest.raises(ValueError, match="start"):
            FaultSpec("a.site", start=-1)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault fields"):
            FaultSpec.from_dict({"site": "a.site", "when": "later"})


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(FaultSpec("a", times=2), FaultSpec("b", mode="kill")),
            seed=7,
            token_dir="/tmp/tokens",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_sites_sorted_unique(self):
        plan = FaultPlan(faults=(FaultSpec("b"), FaultSpec("a"), FaultSpec("b")))
        assert plan.sites() == ["a", "b"]


class TestFaultPoint:
    def test_no_plan_is_inert(self):
        assert fault_point("nothing.here") is None

    def test_raise_mode_fires_then_exhausts(self):
        install_plan(FaultPlan(faults=(FaultSpec("t.site", times=2),)))
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fault_point("t.site")
        assert fault_point("t.site") is None  # budget spent

    def test_start_skips_early_invocations(self):
        install_plan(FaultPlan(faults=(FaultSpec("t.site", start=2),)))
        assert fault_point("t.site") is None
        assert fault_point("t.site") is None
        with pytest.raises(InjectedFault):
            fault_point("t.site")

    def test_context_lands_in_message(self):
        install_plan(FaultPlan(faults=(FaultSpec("t.site"),)))
        with pytest.raises(InjectedFault, match="digest=abc"):
            fault_point("t.site", digest="abc")

    def test_site_calls_counted(self):
        install_plan(FaultPlan(faults=(FaultSpec("other.site"),)))
        fault_point("t.site")
        fault_point("t.site")
        assert site_calls("t.site") == 2

    def test_injected_faults_context_manager_clears(self):
        with injected_faults(FaultPlan(faults=(FaultSpec("t.site"),))):
            assert active_plan() is not None
            assert os.environ.get(ENV_VAR)
        assert active_plan() is None
        assert ENV_VAR not in os.environ

    def test_hang_mode_sleeps_and_returns_spec(self):
        install_plan(FaultPlan(faults=(FaultSpec("t.site", mode="hang", delay=0.01),)))
        fired = fault_point("t.site")
        assert fired is not None and fired.mode == "hang"

    def test_token_dir_budget_shared(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec("t.site", times=1),), token_dir=str(tmp_path)
        )
        install_plan(plan)
        with pytest.raises(InjectedFault):
            fault_point("t.site")
        # Same plan "in another process": counters reset, tokens persist.
        install_plan(plan)
        assert fault_point("t.site") is None

    def test_token_dir_start_is_global(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec("t.site", start=1),), token_dir=str(tmp_path)
        )
        install_plan(plan)
        assert fault_point("t.site") is None  # global invocation 0
        # A "different process" reaches the site next: its first local
        # call claims global index 1 and must fire.
        install_plan(plan)
        with pytest.raises(InjectedFault):
            fault_point("t.site")


class TestEnvPropagation:
    def test_child_process_inherits_plan(self):
        install_plan(FaultPlan(faults=(FaultSpec("child.site"),)))
        code = (
            "from repro.faults import fault_point, InjectedFault\n"
            "try:\n"
            "    fault_point('child.site')\n"
            "except InjectedFault:\n"
            "    print('FIRED')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=os.environ.copy(),
        )
        assert "FIRED" in out.stdout

    def test_malformed_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        assert active_plan() is None
        assert fault_point("any.site") is None

    def test_no_propagate_keeps_env_clean(self):
        install_plan(FaultPlan(faults=(FaultSpec("t.site"),)), propagate=False)
        assert ENV_VAR not in os.environ


class TestScenarios:
    def test_catalog_non_empty(self):
        names = available_scenarios()
        assert "chaos-smoke" in names and "worker-kill" in names

    def test_deterministic_per_seed(self):
        a = build_scenario("chaos-smoke", seed=3)
        b = build_scenario("chaos-smoke", seed=3)
        assert a.faults == b.faults

    def test_seed_moves_fault_placement(self):
        starts = {
            build_scenario("worker-kill", seed=s).faults[0].start for s in range(20)
        }
        assert len(starts) > 1

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope")

    def test_token_dir_threaded_through(self, tmp_path):
        plan = build_scenario("torn-write", seed=0, token_dir=str(tmp_path))
        assert plan.token_dir == str(tmp_path)
        assert json.loads(plan.to_json())["token_dir"] == str(tmp_path)
