"""Tests for vertex filters, cut sparsifier, low-rank baseline, registry."""

import numpy as np
import pytest

from repro.algorithms.betweenness import betweenness_centrality
from repro.compress.cut_sparsifier import CutSparsifier, ni_forest_indices
from repro.compress.lowrank import ClusteredLowRankApproximation
from repro.compress.registry import make_scheme
from repro.compress.vertex_filters import LowDegreeVertexRemoval
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


class TestLowDegree:
    def test_removes_pendant_vertices(self, tiny):
        res = LowDegreeVertexRemoval().compress(tiny)
        # Vertex 4 has degree 1.
        assert res.graph.degree(4) == 0
        assert res.extras["vertices_removed"] >= 1

    def test_star_collapses(self, star20):
        res = LowDegreeVertexRemoval().compress(star20)
        assert res.graph.num_edges == 0

    def test_fixpoint_peels_trees(self):
        g = gen.balanced_tree(2, 5)
        res = LowDegreeVertexRemoval(rounds=None).compress(g)
        assert res.graph.num_edges == 0

    def test_single_round_vs_fixpoint(self):
        g = gen.path_graph(10)
        one = LowDegreeVertexRemoval(rounds=1).compress(g)
        fix = LowDegreeVertexRemoval(rounds=None).compress(g)
        assert one.graph.num_edges > fix.graph.num_edges == 0

    def test_preserves_bc_of_interior_vertices(self):
        """§4.4: degree-1 removal preserves betweenness of survivors."""
        # A clique with pendants hanging off it.
        core = gen.complete_graph(6)
        g = CSRGraph.from_edges(
            9,
            np.concatenate([core.edge_src, [0, 1, 2]]),
            np.concatenate([core.edge_dst, [6, 7, 8]]),
        )
        res = LowDegreeVertexRemoval().compress(g)
        bc0 = betweenness_centrality(g, normalized=False)
        bc1 = betweenness_centrality(res.graph, normalized=False)
        # Vertices 3,4,5 had no pendant: their BC counts shrink only by
        # paths involving removed leaves; vertices that never route leaf
        # paths (all of 3,4,5 route none in a clique) are preserved.
        assert np.allclose(bc0[[3, 4, 5]], bc1[[3, 4, 5]])

    def test_kernel_path(self, tiny):
        res = LowDegreeVertexRemoval().compress_via_kernels(tiny, seed=0)
        assert res.graph.degree(4) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LowDegreeVertexRemoval(max_degree=-1)


class TestCutSparsifier:
    def test_ni_indices_first_forest_spans(self, er300):
        idx = ni_forest_indices(er300)
        forest1 = np.flatnonzero(idx == 1)
        from repro.algorithms.components import connected_components

        sub = er300.keep_edges(idx == 1)
        assert (
            connected_components(sub).num_components
            == connected_components(er300).num_components
        )
        assert len(forest1) <= er300.n - 1

    def test_ni_indices_bounded_by_strength(self):
        g = gen.complete_graph(8)  # every edge has connectivity 7
        idx = ni_forest_indices(g)
        assert idx.max() <= 7

    def test_cut_value_preserved_in_expectation(self):
        """A planted two-cluster graph: the sparse cut survives reweighted."""
        a = gen.complete_graph(12)
        b = gen.complete_graph(12)
        g0 = gen.disjoint_union(a, b)
        bridge_src = np.concatenate([g0.edge_src, [0, 1, 2]])
        bridge_dst = np.concatenate([g0.edge_dst, [12, 13, 14]])
        g = CSRGraph.from_edges(24, bridge_src, bridge_dst)
        res = CutSparsifier(0.4, c=0.4).compress(g, seed=0)
        sub = res.graph
        # Cut between the halves, weighted.
        left = np.arange(12)
        cut_edges = (
            ((sub.edge_src < 12) & (sub.edge_dst >= 12))
            | ((sub.edge_src >= 12) & (sub.edge_dst < 12))
        )
        cut_weight = sub.edge_weights[cut_edges].sum()
        assert cut_weight == pytest.approx(3.0, abs=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CutSparsifier(0.0)


class TestLowRank:
    def test_clique_reconstructs_exactly(self):
        """K_n adjacency is (J - I): rank 2, so rank>=2 SVD recovers it."""
        g = gen.complete_graph(10)
        res = ClusteredLowRankApproximation(2, num_clusters=1).compress(g, seed=0)
        assert res.graph.num_edges == g.num_edges

    def test_high_error_on_random_graph(self, er300):
        """§7.4: low-rank yields very high error rates on sparse graphs."""
        res = ClusteredLowRankApproximation(4, num_clusters=8, keep_intercluster=False).compress(
            er300, seed=1
        )
        # Most edges lost: symmetric difference is large.
        assert abs(res.graph.num_edges - er300.num_edges) > 0.3 * er300.num_edges

    def test_dense_storage_reported(self, er300):
        res = ClusteredLowRankApproximation(4, num_clusters=4).compress(er300, seed=2)
        assert res.extras["dense_storage_floats"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredLowRankApproximation(0)
        with pytest.raises(ValueError):
            ClusteredLowRankApproximation(2, num_clusters=0)


class TestRegistry:
    def test_tr_labels(self):
        s = make_scheme("0.5-1-TR")
        assert s.p == 0.5 and s.x == 1 and s.variant == "basic"
        s = make_scheme("EO-0.8-1-TR")
        assert s.variant == "edge_once" and s.p == 0.8
        s = make_scheme("CT-0.5-2-TR")
        assert s.variant == "count_triangles" and s.x == 2

    def test_named_schemes(self):
        assert make_scheme("uniform(p=0.2)").p == 0.2
        assert make_scheme("spectral(p=0.05, variant=avgdeg)").variant == "avgdeg"
        assert make_scheme("spanner(k=128)").k == 128
        assert make_scheme("summarization(epsilon=0.4)").epsilon == 0.4
        assert make_scheme("lowrank(rank=8)").rank == 8

    def test_bool_parsing(self):
        s = make_scheme("spectral(p=0.5, reweight=false)")
        assert s.reweight is False

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheme("zstd(level=3)")
