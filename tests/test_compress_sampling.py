"""Tests for the graph-sampling schemes (the §2 "sampling" class)."""

import numpy as np
import pytest

from repro.algorithms.components import connected_components
from repro.compress.sampling import RandomVertexSampling, RandomWalkSampling
from repro.graphs import generators as gen


class TestVertexSampling:
    def test_expected_vertex_fraction(self, er300):
        res = RandomVertexSampling(0.5).compress(er300, seed=0)
        removed = res.extras["vertices_removed"]
        assert abs(removed - 0.5 * er300.n) < 4 * np.sqrt(0.25 * er300.n)

    def test_edge_survival_is_p_squared(self, er300):
        """Both endpoints must survive: E[m'] = p² m, the vertex-sampling
        bias the survey literature warns about."""
        p = 0.6
        sizes = [
            RandomVertexSampling(p).compress(er300, seed=s).graph.num_edges
            for s in range(8)
        ]
        assert np.mean(sizes) == pytest.approx(p**2 * er300.num_edges, rel=0.15)

    def test_kernel_path_bit_identical(self, er300):
        scheme = RandomVertexSampling(0.5)
        a = scheme.compress(er300, seed=3).graph
        b = scheme.compress_via_kernels(er300, seed=3).graph
        assert np.array_equal(a.edge_src, b.edge_src)
        assert np.array_equal(a.edge_dst, b.edge_dst)

    def test_vertex_ids_preserved_by_default(self, er300):
        res = RandomVertexSampling(0.5).compress(er300, seed=1)
        assert res.graph.n == er300.n

    def test_relabel(self, er300):
        res = RandomVertexSampling(0.5, relabel=True).compress(er300, seed=1)
        assert res.graph.n == er300.n - res.extras["vertices_removed"]
        res.graph.validate()

    def test_p_edge_cases(self, er300):
        assert RandomVertexSampling(1.0).compress(er300, seed=0).graph.num_edges == er300.num_edges
        assert RandomVertexSampling(0.0).compress(er300, seed=0).graph.num_edges == 0


class TestRandomWalkSampling:
    def test_reaches_target_fraction(self, plc300):
        res = RandomWalkSampling(0.4).compress(plc300, seed=0)
        kept = res.extras["vertices_kept"]
        assert kept >= 0.4 * plc300.n - 1

    def test_sample_is_locally_connected(self, plc300):
        """RW samples stay far more connected than independent vertex
        sampling at the same vertex budget."""
        rw = RandomWalkSampling(0.4, restart_p=0.1).compress(plc300, seed=1)
        kept_fraction = rw.extras["vertices_kept"] / plc300.n
        vs = RandomVertexSampling(kept_fraction).compress(plc300, seed=1)
        # Compare components among non-isolated vertices.
        def live_components(g):
            res = connected_components(g)
            labels = res.labels[g.degrees > 0]
            return len(np.unique(labels)) if len(labels) else 0

        assert live_components(rw.graph) <= live_components(vs.graph)

    def test_walk_respects_budget(self):
        # Disconnected graph: restarts + reseeds still terminate.
        g = gen.disjoint_union(gen.path_graph(50), gen.path_graph(50))
        res = RandomWalkSampling(0.9, max_steps_factor=50).compress(g, seed=2)
        assert res.extras["walk_steps"] <= 50 * g.n

    def test_registry(self):
        from repro.compress.registry import make_scheme

        s = make_scheme("random_walk_sampling(target_fraction=0.3, restart_p=0.2)")
        assert s.target_fraction == 0.3
        assert s.restart_p == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkSampling(1.5)
        with pytest.raises(ValueError):
            RandomWalkSampling(0.5, max_steps_factor=0)
