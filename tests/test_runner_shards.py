"""Tests for out-of-core shard sets: exact edge tiling, mmap-backed
reloads, per-shard sweep equality, and manifest damage detection."""

import numpy as np
import pytest

from repro.analytics.session import Session
from repro.graphs import generators as gen
from repro.graphs.snapshot import SnapshotError
from repro.runner.shards import ShardSet, shard_graph, sweep_shards

SCHEMES = ["uniform(p=0.5)"]
ALGS = ["pr"]


def _comparable(cells):
    return sorted(
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in cells
    )


class TestShardCutting:
    def test_tiles_edges_exactly(self, er300, tmp_path):
        ss = shard_graph(er300, tmp_path / "s", num_shards=3)
        assert len(ss) == 3
        assert sum(s.num_edges for s in ss.shards) == er300.num_edges
        ranges = [(s.edge_lo, s.edge_hi) for s in ss.shards]
        assert ranges[0][0] == 0 and ranges[-1][1] == er300.num_edges
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_shards_match_keep_edges(self, er300, tmp_path):
        ss = shard_graph(er300, tmp_path / "s", num_shards=2)
        for shard in ss.shards:
            mask = np.zeros(er300.num_edges, dtype=bool)
            mask[shard.edge_lo : shard.edge_hi] = True
            expected = er300.keep_edges(mask)
            got = ss.load(shard.index)
            assert got.n == er300.n  # vertex set preserved
            np.testing.assert_array_equal(got.edge_src, expected.edge_src)
            np.testing.assert_array_equal(got.indptr, expected.indptr)

    def test_balanced_policy(self, plc300, tmp_path):
        ss = shard_graph(plc300, tmp_path / "s", num_shards=2, policy="balanced")
        assert sum(s.num_edges for s in ss.shards) == plc300.num_edges

    def test_unknown_policy(self, er300, tmp_path):
        with pytest.raises(ValueError, match="policy"):
            shard_graph(er300, tmp_path / "s", num_shards=2, policy="vibes")

    def test_open_round_trip_mmap_read_only(self, er300, tmp_path):
        shard_graph(er300, tmp_path / "s", num_shards=2)
        ss = ShardSet.open(tmp_path / "s")
        for shard, sub in ss:
            assert sub.num_edges == shard.num_edges
            assert not sub.edge_src.flags.writeable

    def test_missing_manifest_is_damage(self, er300, tmp_path):
        ss = shard_graph(er300, tmp_path / "s", num_shards=2)
        (ss.root / "manifest.json").unlink()
        with pytest.raises(SnapshotError, match="manifest"):
            ShardSet.open(ss.root)

    def test_future_manifest_version_refused(self, er300, tmp_path):
        import json

        ss = shard_graph(er300, tmp_path / "s", num_shards=2)
        manifest = dict(ss.manifest, version=99)
        (ss.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            ShardSet.open(ss.root)


class TestShardSweep:
    def test_equals_per_shard_in_memory_grids(self, er300, tmp_path):
        ss = shard_graph(er300, tmp_path / "s", num_shards=2)
        table, perf = sweep_shards(ss, SCHEMES, ALGS, ["kl"], seed=3, jobs=2)
        assert perf["num_shards"] == 2
        assert all(p["graph_load"] == "mmap" for p in perf["shards"])
        for shard in ss.shards:
            label = f"shard:{shard.index}"
            mine = [c for c in table if c.graph == label]
            assert mine, f"no cells for {label}"
            expected = Session(ss.load(shard.index), seed=3).grid(
                SCHEMES, ALGS, ["kl"], seed=3
            )
            assert _comparable(mine) == _comparable(expected)

    def test_accepts_path_and_inline_jobs(self, er300, tmp_path):
        shard_graph(er300, tmp_path / "s", num_shards=2)
        table, perf = sweep_shards(
            tmp_path / "s", SCHEMES, ALGS, ["kl"], seed=3, jobs=1
        )
        assert perf["cells"] == len(table) > 0
        assert perf["failed_cells"] == []
