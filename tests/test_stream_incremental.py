"""Incremental recompression: repairs must equal full recompression.

Three maintainers, three contracts:

- attach (and every churn-triggered full rebuild) is *bit-identical* to
  the batch scheme at the same seed — the incremental path shares the
  batch RNG discipline, not merely its distribution;
- across repaired generations the metamorphic invariant
  ``recompress(apply(G, Δ)) ≡ incremental(G, Δ)`` holds — exactly for
  the deterministic low-degree kernel, contract-level (subgraph
  invariants + the deterministic Table 3 cells) for the seeded spanner
  and EO triangle reduction;
- churn above the threshold falls back to a full rebuild, and the stats
  ledger records which path ran.
"""

import numpy as np
import pytest

from repro.compress.spanner import Spanner
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.vertex_filters import LowDegreeVertexRemoval
from repro.graphs import generators as gen
from repro.stream.delta import EdgeDelta
from repro.stream.incremental import (
    IncrementalLowDegree,
    IncrementalSpanner,
    IncrementalTriangleReduction,
    maintainer_for,
)
from repro.stream.ingest import GraphStream
from repro.verify import properties
from repro.verify.fuzz import DELTA_FAMILIES


@pytest.fixture
def base():
    return gen.powerlaw_cluster(120, 3, 0.4, seed=3)


SPECS = ["spanner(k=4)", "EO-0.8-1-TR", "low_degree"]
BATCH = {
    "spanner(k=4)": lambda: Spanner(4),
    "EO-0.8-1-TR": lambda: TriangleReduction(0.8, x=1, variant="edge_once"),
    "low_degree": lambda: LowDegreeVertexRemoval(),
}


def assert_buffers_identical(a, b):
    assert a.n == b.n and a.directed == b.directed
    for name in ("edge_src", "edge_dst", "indptr", "indices", "arc_edge_ids"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestAttachParity:
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_attach_is_bit_identical_to_batch(self, base, spec, seed):
        maintainer = maintainer_for(spec, seed=seed)
        maintainer.attach(base)
        batch = BATCH[spec]().compress(base, seed=seed).graph
        assert_buffers_identical(maintainer.compressed, batch)

    def test_result_carries_incremental_extras(self, base):
        m = maintainer_for("low_degree")
        m.attach(base)
        result = m.result()
        assert result.extras["incremental"] is True
        assert {"repairs", "full_rebuilds"} <= set(result.extras)


class TestMetamorphicEquivalence:
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("family", sorted(DELTA_FAMILIES))
    def test_invariant_over_delta_families(self, base, spec, family):
        deltas = DELTA_FAMILIES[family](base, 5)
        assert properties.incremental_equivalence(base, deltas, spec, seed=5) == []

    def test_low_degree_exact_across_generations(self, base):
        # The deterministic arm, asserted directly: after every repaired
        # generation the maintained output equals a fresh batch run.
        maintainer = IncrementalLowDegree()
        stream = GraphStream(base)
        maintainer.attach(base)
        for delta in DELTA_FAMILIES["churn"](base, 9):
            g = stream.apply(delta)
            maintainer.update(delta, g)
            batch = LowDegreeVertexRemoval().compress(g).graph
            assert_buffers_identical(maintainer.compressed, batch)
        assert maintainer.stats["full_rebuilds"] == 0
        assert maintainer.stats["repairs"] == 3


class TestChurnFallback:
    def test_large_delta_forces_full_rebuild(self, base):
        maintainer = IncrementalSpanner(k=4, seed=0, churn_threshold=0.01)
        stream = GraphStream(base)
        maintainer.attach(base)
        delta = DELTA_FAMILIES["churn"](base, 0)[0]  # 12 ops >> 1% of m
        maintainer.update(delta, stream.apply(delta))
        assert maintainer.stats == {"repairs": 0, "full_rebuilds": 1}
        # ... and the rebuild equals the batch scheme on the new head.
        batch = Spanner(4).compress(stream.head, seed=0).graph
        assert_buffers_identical(maintainer.compressed, batch)

    def test_small_delta_repairs(self, base):
        maintainer = IncrementalSpanner(k=4, seed=0, churn_threshold=0.25)
        stream = GraphStream(base)
        maintainer.attach(base)
        delta = EdgeDelta.build(deletes=[(int(base.edge_src[0]), int(base.edge_dst[0]))])
        maintainer.update(delta, stream.apply(delta))
        assert maintainer.stats == {"repairs": 1, "full_rebuilds": 0}


class TestDispatchAndGuards:
    def test_maintainer_for_dispatch(self):
        assert isinstance(maintainer_for("spanner(k=3)"), IncrementalSpanner)
        assert isinstance(
            maintainer_for("EO-0.5-1-TR"), IncrementalTriangleReduction
        )
        assert isinstance(maintainer_for("low_degree"), IncrementalLowDegree)

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(ValueError):
            maintainer_for("uniform(p=0.5)")

    def test_unsupported_variants_rejected(self):
        with pytest.raises(ValueError, match="edge_once"):
            maintainer_for(TriangleReduction(0.5, x=2, variant="basic"))
        with pytest.raises(ValueError, match="weighted=False"):
            maintainer_for(Spanner(4, weighted=True))
        with pytest.raises(ValueError, match="relabel=False"):
            maintainer_for(LowDegreeVertexRemoval(relabel=True))

    def test_directed_graphs_rejected(self):
        g = gen.rmat(5, 4, seed=0, directed=True)
        for spec in ("spanner(k=4)", "EO-0.8-1-TR"):
            with pytest.raises(ValueError, match="undirected"):
                maintainer_for(spec).attach(g)

    def test_update_before_attach_rejected(self):
        m = maintainer_for("low_degree")
        with pytest.raises(RuntimeError, match="attach"):
            m.result()
