"""BFS, connected components, SSSP — verified against networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.components import connected_components, largest_component
from repro.algorithms.sssp import delta_stepping, dijkstra, sssp
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.graphs.weights import with_uniform_weights
from tests.conftest import to_networkx


class TestBFS:
    def test_levels_vs_networkx(self, er300):
        res = bfs(er300, 0)
        truth = nx.single_source_shortest_path_length(to_networkx(er300), 0)
        for v, d in truth.items():
            assert res.level[v] == d
        assert res.num_reached == len(truth)

    def test_parents_consistent(self, er300):
        res = bfs(er300, 0)
        for v in res.reached():
            if v == 0:
                assert res.parent[v] == 0
                continue
            p = res.parent[v]
            assert er300.has_edge(int(p), int(v))
            assert res.level[v] == res.level[p] + 1

    def test_unreached_marked(self):
        g = gen.disjoint_union(gen.path_graph(3), gen.path_graph(3))
        res = bfs(g, 0)
        assert res.level[3] == -1 and res.parent[3] == -1
        assert res.num_reached == 3

    def test_source_validation(self, tiny):
        with pytest.raises(ValueError):
            bfs(tiny, 99)

    def test_directed_bfs(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], directed=True)
        res = bfs(g, 0)
        assert res.level.tolist() == [0, 1, 2, 3]
        back = bfs(g, 3)
        assert back.num_reached == 1


class TestComponents:
    def test_vs_networkx(self, er300):
        assert (
            connected_components(er300).num_components
            == nx.number_connected_components(to_networkx(er300))
        )

    def test_labels_are_min_ids(self, tiny):
        res = connected_components(tiny)
        assert res.num_components == 1
        assert np.all(res.labels == 0)

    def test_long_path_converges(self):
        g = gen.path_graph(2000)
        res = connected_components(g)
        assert res.num_components == 1

    def test_isolated_vertices(self):
        g = CSRGraph.empty(5)
        res = connected_components(g)
        assert res.num_components == 5
        assert res.sizes().tolist() == [1] * 5

    def test_largest_component(self):
        g = gen.disjoint_union(gen.path_graph(3), gen.complete_graph(5))
        big = largest_component(g)
        assert len(big) == 5
        assert big.tolist() == [3, 4, 5, 6, 7]


class TestSSSP:
    def test_dijkstra_vs_networkx(self, weighted300):
        res = dijkstra(weighted300, 0)
        truth = nx.single_source_dijkstra_path_length(to_networkx(weighted300), 0)
        for v, d in truth.items():
            assert res.distance[v] == pytest.approx(d)
        assert res.num_reached == len(truth)

    def test_delta_stepping_matches_dijkstra(self, weighted300):
        a = dijkstra(weighted300, 5)
        for delta in (0.5, 2.0, 100.0):
            b = delta_stepping(weighted300, 5, delta=delta)
            assert np.allclose(
                np.nan_to_num(a.distance, posinf=-1.0),
                np.nan_to_num(b.distance, posinf=-1.0),
            )

    def test_unweighted_equals_bfs(self, er300):
        levels = bfs(er300, 3).level
        dist = delta_stepping(er300, 3).distance
        finite = np.isfinite(dist)
        assert np.array_equal(np.flatnonzero(levels >= 0), np.flatnonzero(finite))
        assert np.allclose(dist[finite], levels[levels >= 0])

    def test_path_reconstruction(self, weighted300):
        res = dijkstra(weighted300, 0)
        v = int(np.argmax(np.where(np.isfinite(res.distance), res.distance, -1)))
        path = res.path_to(v)
        assert path[0] == 0 and path[-1] == v
        total = sum(
            weighted300.weight_of(weighted300.edge_id(a, b))
            for a, b in zip(path, path[1:])
        )
        assert total == pytest.approx(res.distance[v])

    def test_unreachable_path_empty(self):
        g = gen.disjoint_union(gen.path_graph(2), gen.path_graph(2))
        assert dijkstra(g, 0).path_to(3) == []

    def test_negative_weight_rejected(self, er300):
        bad = er300.with_weights(np.full(er300.num_edges, -1.0))
        with pytest.raises(ValueError, match="nonnegative"):
            dijkstra(bad, 0)

    def test_sssp_dispatch(self, weighted300):
        for method in ("dijkstra", "delta", "auto"):
            r = sssp(weighted300, 0, method=method)
            assert r.distance[0] == 0.0
        with pytest.raises(ValueError):
            sssp(weighted300, 0, method="bogus")

    def test_invalid_delta(self, weighted300):
        with pytest.raises(ValueError):
            delta_stepping(weighted300, 0, delta=0.0)


class TestBFSValidator:
    """Graph500-style validation of BFS outputs (§5)."""

    def test_valid_output_passes(self, er300):
        from repro.algorithms.bfs import validate_bfs_tree

        res = bfs(er300, 0)
        assert validate_bfs_tree(er300, res) == []

    def test_corrupted_parent_detected(self, er300):
        import dataclasses

        from repro.algorithms.bfs import validate_bfs_tree

        res = bfs(er300, 0)
        parent = res.parent.copy()
        victim = int(res.reached()[-1])
        if victim == 0:
            victim = int(res.reached()[1])
        parent[victim] = victim  # self-parent on a non-root
        bad = dataclasses.replace(res, parent=parent)
        errors = validate_bfs_tree(er300, bad)
        assert errors

    def test_corrupted_level_detected(self, er300):
        import dataclasses

        from repro.algorithms.bfs import validate_bfs_tree

        res = bfs(er300, 0)
        level = res.level.copy()
        victim = int(res.reached()[-1])
        level[victim] += 5
        bad = dataclasses.replace(res, level=level)
        assert validate_bfs_tree(er300, bad)

    def test_validator_on_every_dataset_standin(self):
        from repro.algorithms.bfs import validate_bfs_tree
        from repro.graphs import datasets

        for name in ("s-pok", "l-dbl", "v-usa"):
            g = datasets.load(name, seed=0)
            res = bfs(g, 0)
            assert validate_bfs_tree(g, res) == [], name
