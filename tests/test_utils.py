"""Tests for utility modules: RNG plumbing, chunking, timer, validation."""

import numpy as np
import pytest

from repro.utils.chunking import balanced_chunks, chunk_ranges
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestRNG:
    def test_as_generator_from_int(self):
        a = as_generator(5)
        b = as_generator(5)
        assert a.random() == b.random()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_independent_streams(self):
        streams = spawn_generators(7, 4)
        values = [s.random() for s in streams]
        assert len(set(values)) == 4

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_generators(3, 3)]
        b = [g.random() for g in spawn_generators(3, 3)]
        assert a == b

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestChunking:
    def test_chunk_ranges_cover(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_chunk_ranges_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 5)
        assert ranges == [(0, 1), (1, 2)]

    def test_chunk_ranges_empty(self):
        assert chunk_ranges(0, 3) == []

    def test_chunk_ranges_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)

    def test_balanced_chunks_equalize_weight(self):
        w = np.array([100, 1, 1, 1, 1, 1, 1, 100])
        ranges = balanced_chunks(w, 2)
        loads = [w[lo:hi].sum() for lo, hi in ranges]
        assert abs(loads[0] - loads[1]) <= 100

    def test_balanced_chunks_cover(self):
        w = np.ones(17)
        ranges = balanced_chunks(w, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 17
        assert sum(hi - lo for lo, hi in ranges) == 17

    def test_balanced_zero_weights(self):
        ranges = balanced_chunks(np.zeros(6), 2)
        assert sum(hi - lo for lo, hi in ranges) == 6


class TestTimer:
    def test_measure_and_mean(self):
        t = Timer()
        with t.measure("work"):
            pass
        assert t.mean("work") >= 0.0
        assert t.total("work") >= 0.0
        assert t.labels() == ["work"]

    def test_warmup_fraction(self):
        t = Timer()
        for v in [100.0] + [1.0] * 99:
            t.add_sample("x", v)
        assert t.mean("x", warmup_fraction=0.01) == pytest.approx(1.0)
        assert t.mean("x") == pytest.approx(1.99)

    def test_missing_label(self):
        with pytest.raises(KeyError):
            Timer().mean("nope")

    def test_confidence_interval(self):
        t = Timer()
        for v in range(100):
            t.add_sample("x", float(v))
        lo, hi = t.confidence_interval("x")
        assert lo <= 49.5 <= hi
        t2 = Timer()
        t2.add_sample("y", 1.0)
        assert t2.confidence_interval("y") == (1.0, 1.0)


class TestStopwatch:
    def test_stopwatch_measures_block(self):
        from repro.utils.timer import stopwatch

        with stopwatch() as sw:
            assert sw.seconds == 0.0
        assert sw.seconds > 0.0

    def test_stopwatch_records_on_raise(self):
        from repro.utils.timer import stopwatch

        with pytest.raises(RuntimeError):
            with stopwatch() as sw:
                raise RuntimeError("boom")
        assert sw.seconds > 0.0

    def test_timed_call(self):
        from repro.utils.timer import timed_call

        out, seconds = timed_call(lambda a, b=0: a + b, 2, b=3)
        assert out == 5
        assert seconds >= 0.0

    def test_session_shares_the_helper(self):
        # The session's historical `_timed` is the shared utils helper,
        # not a private reimplementation.
        from repro.analytics import session
        from repro.utils.timer import timed_call

        assert session._timed is timed_call


class TestValidation:
    def test_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(-0.1)
        with pytest.raises(ValueError):
            check_probability(1.1)

    def test_positive_nonnegative(self):
        assert check_positive(1) == 1
        assert check_nonnegative(0) == 0
        with pytest.raises(ValueError):
            check_positive(0)
        with pytest.raises(ValueError):
            check_nonnegative(-1)

    def test_in_range(self):
        assert check_in_range(5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range(11, 0, 10)
