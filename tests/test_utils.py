"""Tests for utility modules: RNG plumbing, chunking, timer, validation."""

import numpy as np
import pytest

from repro.utils.chunking import balanced_chunks, chunk_ranges
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestRNG:
    def test_as_generator_from_int(self):
        a = as_generator(5)
        b = as_generator(5)
        assert a.random() == b.random()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_independent_streams(self):
        streams = spawn_generators(7, 4)
        values = [s.random() for s in streams]
        assert len(set(values)) == 4

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_generators(3, 3)]
        b = [g.random() for g in spawn_generators(3, 3)]
        assert a == b

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestChunking:
    def test_chunk_ranges_cover(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_chunk_ranges_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 5)
        assert ranges == [(0, 1), (1, 2)]

    def test_chunk_ranges_empty(self):
        assert chunk_ranges(0, 3) == []

    def test_chunk_ranges_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)

    def test_balanced_chunks_equalize_weight(self):
        w = np.array([100, 1, 1, 1, 1, 1, 1, 100])
        ranges = balanced_chunks(w, 2)
        loads = [w[lo:hi].sum() for lo, hi in ranges]
        assert abs(loads[0] - loads[1]) <= 100

    def test_balanced_chunks_cover(self):
        w = np.ones(17)
        ranges = balanced_chunks(w, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 17
        assert sum(hi - lo for lo, hi in ranges) == 17

    def test_balanced_zero_weights(self):
        ranges = balanced_chunks(np.zeros(6), 2)
        assert sum(hi - lo for lo, hi in ranges) == 6


class TestTimer:
    def test_measure_and_mean(self):
        t = Timer()
        with t.measure("work"):
            pass
        assert t.mean("work") >= 0.0
        assert t.total("work") >= 0.0
        assert t.labels() == ["work"]

    def test_warmup_fraction(self):
        t = Timer()
        for v in [100.0] + [1.0] * 99:
            t.add_sample("x", v)
        assert t.mean("x", warmup_fraction=0.01) == pytest.approx(1.0)
        assert t.mean("x") == pytest.approx(1.99)

    def test_missing_label(self):
        with pytest.raises(KeyError):
            Timer().mean("nope")

    def test_confidence_interval(self):
        t = Timer()
        for v in range(100):
            t.add_sample("x", float(v))
        lo, hi = t.confidence_interval("x")
        assert lo <= 49.5 <= hi
        t2 = Timer()
        t2.add_sample("y", 1.0)
        assert t2.confidence_interval("y") == (1.0, 1.0)


class TestInverseNormal:
    """The stdlib-only quantile function pinned to scipy's values.

    ``inverse_normal_cdf`` (Acklam's approximation + one Halley step)
    replaced the lazy ``scipy.stats.norm.ppf`` import in ``_z_for``; the
    pins below are scipy 1.x outputs, so any drift from the removed
    dependency fails here.
    """

    #: p -> scipy.stats.norm.ppf(p), high-precision reference values.
    SCIPY_PINS = {
        0.5: 0.0,
        0.75: 0.6744897501960817,
        0.25: -0.6744897501960817,
        0.95: 1.6448536269514722,
        0.975: 1.959963984540054,
        0.995: 2.5758293035489004,
        0.999: 3.090232306167813,
        0.9995: 3.2905267314918945,
        0.01: -2.3263478740408408,
        0.001: -3.090232306167813,
        1e-9: -5.997807015007531,
    }

    def test_pinned_scipy_values(self):
        from repro.utils.timer import inverse_normal_cdf

        for p, want in self.SCIPY_PINS.items():
            assert inverse_normal_cdf(p) == pytest.approx(want, abs=1e-12)

    def test_symmetry(self):
        from repro.utils.timer import inverse_normal_cdf

        for p in (0.01, 0.1, 0.3, 0.45):
            assert inverse_normal_cdf(p) == pytest.approx(
                -inverse_normal_cdf(1.0 - p), abs=1e-12
            )

    def test_round_trip_through_cdf(self):
        import math

        from repro.utils.timer import inverse_normal_cdf

        for p in (0.001, 0.1, 0.5, 0.9, 0.999):
            x = inverse_normal_cdf(p)
            cdf = 0.5 * math.erfc(-x / math.sqrt(2.0))
            assert cdf == pytest.approx(p, abs=1e-13)

    def test_domain_validation(self):
        from repro.utils.timer import inverse_normal_cdf

        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                inverse_normal_cdf(bad)

    def test_z_for_confidence_levels(self):
        # _z_for(level) is ppf(0.5 + level/2): the two-sided z*.
        from repro.utils.timer import _z_for

        assert _z_for(0.95) == pytest.approx(1.959963984540054, abs=1e-12)
        assert _z_for(0.99) == pytest.approx(2.5758293035489004, abs=1e-12)
        assert _z_for(0.90) == pytest.approx(1.6448536269514722, abs=1e-12)
        with pytest.raises(ValueError):
            _z_for(0.0)
        with pytest.raises(ValueError):
            _z_for(1.0)


class TestStopwatch:
    def test_stopwatch_measures_block(self):
        from repro.utils.timer import stopwatch

        with stopwatch() as sw:
            assert sw.seconds == 0.0
        assert sw.seconds > 0.0

    def test_stopwatch_records_on_raise(self):
        from repro.utils.timer import stopwatch

        with pytest.raises(RuntimeError):
            with stopwatch() as sw:
                raise RuntimeError("boom")
        assert sw.seconds > 0.0

    def test_timed_call(self):
        from repro.utils.timer import timed_call

        out, seconds = timed_call(lambda a, b=0: a + b, 2, b=3)
        assert out == 5
        assert seconds >= 0.0

    def test_session_shares_the_helper(self):
        # The session's historical `_timed` is the shared utils helper,
        # not a private reimplementation.
        from repro.analytics import session
        from repro.utils.timer import timed_call

        assert session._timed is timed_call


class TestValidation:
    def test_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(-0.1)
        with pytest.raises(ValueError):
            check_probability(1.1)

    def test_positive_nonnegative(self):
        assert check_positive(1) == 1
        assert check_nonnegative(0) == 0
        with pytest.raises(ValueError):
            check_positive(0)
        with pytest.raises(ValueError):
            check_nonnegative(-1)

    def test_in_range(self):
        assert check_in_range(5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range(11, 0, 10)


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        from repro.utils.fileio import atomic_write

        target = tmp_path / "nested" / "out.bin"
        result = atomic_write(target, lambda fh: fh.write(b"payload"))
        assert result == target
        assert target.read_bytes() == b"payload"
        # No temp droppings left behind.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_failure_leaves_target_untouched(self, tmp_path):
        from repro.utils.fileio import atomic_write

        target = tmp_path / "out.bin"
        atomic_write(target, lambda fh: fh.write(b"original"))

        def explode(fh):
            fh.write(b"half-written garbage")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(target, explode)
        assert target.read_bytes() == b"original"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_non_durable_still_atomic(self, tmp_path):
        from repro.utils.fileio import atomic_write

        target = tmp_path / "out.bin"
        atomic_write(target, lambda fh: fh.write(b"scratch"), durable=False)
        assert target.read_bytes() == b"scratch"

    def test_torn_write_fault_surfaces_real_torn_file(self, tmp_path):
        from repro.faults import FaultPlan, FaultSpec, InjectedFault, injected_faults
        from repro.utils.fileio import atomic_write

        target = tmp_path / "out.bin"
        payload = b"0123456789" * 10
        plan = FaultPlan(
            faults=(FaultSpec("fileio.atomic_write", mode="torn_write"),)
        )
        with injected_faults(plan):
            with pytest.raises(InjectedFault):
                atomic_write(target, lambda fh: fh.write(payload))
        # The tear is *visible*: a truncated file replaced the target,
        # exactly the corruption readers must tolerate.
        torn = target.read_bytes()
        assert 0 < len(torn) < len(payload)
        assert payload.startswith(torn)
        # A clean retry heals it.
        atomic_write(target, lambda fh: fh.write(payload))
        assert target.read_bytes() == payload
