"""Figure 8: distributed lossy compression of the largest graphs.

The paper's "first results from distributed lossy graph compression":
uniform sampling (p kept = 0.4 and 0.7 in our runs, matching the figure's
panels) executed by the simulated MPI-RMA pipeline over multiple ranks on
the five largest (directed, web-crawl) stand-ins; the output is each
graph's out-degree distribution before/after, plus the Fig. 8 observation
that sampling "removes the clutter" — the number of distinct scattered
(degree, fraction) points drops.

Rank counts echo the paper's node counts (scaled down).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table, write_csv
from repro.distributed.engine import distributed_uniform_sampling
from repro.metrics.distributions import degree_histogram

GRAPHS_AND_RANKS = [
    ("h-wdc", 10),
    ("h-deu", 8),
    ("h-duk", 6),
    ("h-clu", 5),
    ("h-dgh", 4),
]
PS = [0.4, 0.7]


def run_fig8(graph_cache, results_dir):
    rows = []
    series_rows = []
    for gname, ranks in GRAPHS_AND_RANKS:
        g = graph_cache.load(gname)
        pts0 = len(degree_histogram(g)[0])
        for deg, frac in zip(*degree_histogram(g)):
            series_rows.append([gname, "none", int(deg), float(frac)])
        row = [gname, g.n, g.num_edges, ranks, pts0]
        for p in PS:
            res = distributed_uniform_sampling(g, p, num_ranks=ranks, seed=6)
            sub = res.result.graph
            pts = len(degree_histogram(sub)[0])
            row.extend([sub.num_edges, pts])
            for deg, frac in zip(*degree_histogram(sub)):
                series_rows.append([gname, f"p={p}", int(deg), float(frac)])
            # Per-rank accounting: ownership covered everything exactly once.
            assert sum(res.edges_per_rank) == g.num_edges
        rows.append(row)
    headers = [
        "graph", "n", "m", "ranks", "deg_points(orig)",
        "m(p=0.4)", "deg_points(p=0.4)", "m(p=0.7)", "deg_points(p=0.7)",
    ]
    text = format_table(rows, headers, title="Figure 8: distributed uniform sampling")
    emit(results_dir, "fig8_distributed", text, rows, headers)
    write_csv(
        series_rows,
        ["graph", "p", "degree", "fraction"],
        results_dir / "fig8_series.csv",
    )

    # --- shape assertions ---
    for row in rows:
        pts0, pts04, pts07 = row[4], row[6], row[8]
        assert pts04 < pts0, f"{row[0]}: sampling should remove clutter"
        m04, m07 = row[5], row[7]
        assert abs(m04 / row[2] - 0.4) < 0.05
        assert abs(m07 / row[2] - 0.7) < 0.05
    return rows


def test_fig8_distributed(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_fig8, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS_AND_RANKS)
