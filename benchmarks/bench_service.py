"""Service end-to-end benchmark: boot ``python -m repro.service`` as a
subprocess, drive it over HTTP, and measure the service-layer costs the
tests only assert qualitatively:

- **cold latency** — submit→complete wall time for a smoke-sized grid
  computed from scratch;
- **warm latency** — the identical resubmission replayed from the
  artifact store (asserted zero recomputation via ``/metrics``);
- **coalescing** — N concurrent identical submissions collapsing onto
  one computation (asserted via the store write count);
- **shutdown** — SIGINT drains and exits 0.

Emits ``BENCH_service.json`` through the shared perf-record machinery
(:func:`repro.runner.harness.write_perf_record`).  Shape assertions
follow the benchmark conventions: a warm run that recomputes, a
duplicate that computes twice, or an unclean shutdown **fails**.

Run::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.runner.harness import write_perf_record

#: Concurrent identical submissions in the coalesce section.
DUPLICATES = 6

FULL_JOB = {
    "graph": "s-pok",
    "schemes": ["uniform(p=0.5)", "spanner(k=4)", "EO-0.8-1-TR", "spectral(p=0.5)"],
    "algorithms": ["pr", "cc", "tc"],
    "seeds": [0, 1],
}
SMOKE_JOB = {
    "graph": "s-flx",
    "schemes": ["uniform(p=0.5)", "spanner(k=4)"],
    "algorithms": ["pr", "cc"],
    "seeds": [0],
}


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return json.loads(resp.read())


def _post(base: str, body: dict) -> dict:
    request = urllib.request.Request(base + "/jobs", data=json.dumps(body).encode())
    with urllib.request.urlopen(request, timeout=60) as resp:
        return json.loads(resp.read())


def _wait(base: str, job_id: str, timeout: float = 600.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        summary = _get(base, f"/jobs/{job_id}")
        if summary["state"] in ("done", "failed"):
            assert summary["state"] == "done", summary
            return summary
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


def _boot(store: Path, workers: int) -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro.service`` on a free port; (process, base URL)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--store", str(store), "--jobs", str(workers), "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).resolve().parent.parent,
    )
    banner = process.stdout.readline()
    assert "repro service: http://" in banner, banner
    base = banner.split()[2].rstrip("/")
    # Wait for the listener to answer.
    for _ in range(100):
        try:
            assert _get(base, "/healthz")["status"] == "ok"
            break
        except OSError:
            time.sleep(0.05)
    return process, base


def bench_cold_vs_warm(base: str, job: dict) -> dict:
    start = time.perf_counter()
    cold = _wait(base, _post(base, job)["id"])
    cold_latency = time.perf_counter() - start
    assert not cold["warm"], cold

    before = _get(base, "/metrics")["store"]
    start = time.perf_counter()
    warm = _wait(base, _post(base, job)["id"])
    warm_latency = time.perf_counter() - start
    after = _get(base, "/metrics")["store"]

    # The warm resubmission replayed everything: hits grew by the full
    # grid, misses (computations) and writes did not move.
    assert warm["warm"], warm
    assert after["misses"] == before["misses"], (before, after)
    assert after["writes"] == before["writes"], (before, after)
    assert after["hits"] > before["hits"], (before, after)
    return {
        "cold_submit_to_complete_seconds": round(cold_latency, 4),
        "warm_submit_to_complete_seconds": round(warm_latency, 4),
        "warm_speedup": round(cold_latency / max(warm_latency, 1e-9), 2),
        "cells": cold["cells"],
        "store_hits_on_warm": after["hits"] - before["hits"],
    }


def bench_coalesce(base: str, job: dict) -> dict:
    """N concurrent identical submissions → one computation."""
    job = dict(job, seeds=[max(job["seeds"]) + 1])  # a grid the store has not seen
    writes_before = _get(base, "/metrics")["store"]["writes"]
    barrier = threading.Barrier(DUPLICATES)
    summaries = [None] * DUPLICATES

    def post(i):
        barrier.wait()
        summaries[i] = _post(base, job)

    threads = [threading.Thread(target=post, args=(i,)) for i in range(DUPLICATES)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for summary in summaries:
        _wait(base, summary["id"])
    metrics = _get(base, "/metrics")
    new_writes = metrics["store"]["writes"] - writes_before
    cell_groups = len(job["schemes"]) * len(job["algorithms"]) * len(job["seeds"])
    assert new_writes == cell_groups, (new_writes, cell_groups)
    return {
        "duplicate_submissions": DUPLICATES,
        "distinct_jobs": len({s["id"] for s in summaries}),
        "coalesced_total": metrics["coalesced"],
        "cell_groups_written": new_writes,
    }


def bench_shutdown(process: subprocess.Popen) -> dict:
    start = time.perf_counter()
    process.send_signal(signal.SIGINT)
    output = process.communicate(timeout=120)[0]
    assert process.returncode == 0, (process.returncode, output)
    assert "repro service: stopped" in output, output
    return {"sigint_to_exit_seconds": round(time.perf_counter() - start, 4)}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized job")
    parser.add_argument("--jobs", type=int, default=2, help="service worker threads")
    parser.add_argument(
        "--out", default="benchmarks/results", help="perf-record directory"
    )
    args = parser.parse_args(argv)
    job = SMOKE_JOB if args.smoke else FULL_JOB

    store = Path(tempfile.mkdtemp(prefix="repro-bench-service-")) / "store"
    process, base = _boot(store, args.jobs)
    print(f"service up at {base} (store: {store})")
    try:
        perf = {
            "mode": "smoke" if args.smoke else "full",
            "workers": args.jobs,
            "job": job,
            "latency": bench_cold_vs_warm(base, job),
            "coalesce": bench_coalesce(base, job),
        }
    except BaseException:
        process.kill()
        raise
    perf["shutdown"] = bench_shutdown(process)

    path = write_perf_record("service", perf, args.out)
    latency = perf["latency"]
    print(
        f"cold {latency['cold_submit_to_complete_seconds']:.2f}s → warm "
        f"{latency['warm_submit_to_complete_seconds']:.2f}s "
        f"({latency['warm_speedup']}x); "
        f"{perf['coalesce']['duplicate_submissions']} duplicates → "
        f"{perf['coalesce']['distinct_jobs']} job(s); "
        f"shutdown {perf['shutdown']['sigint_to_exit_seconds']:.2f}s"
    )
    print(f"perf record: {path}")


if __name__ == "__main__":
    main()
