"""Ablation: Δ-stepping's bucket width under TR compression (§7.1).

The paper remarks that for some graphs and roots "very high p that
significantly enlarges diameter (and iteration count) may cause
slowdowns.  Changing Δ can help but needs manual tuning."  This ablation
makes that observation reproducible: sweep Δ on a weighted graph before
and after aggressive TR and report SSSP runtimes — the optimum Δ shifts
on the compressed graph because removed edges lengthen shortest paths.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit
from repro.algorithms.sssp import delta_stepping
from repro.analytics.report import format_table
from repro.compress.triangle_reduction import TriangleReduction
from repro.graphs.weights import with_uniform_weights

DELTAS = [0.5, 2.0, 8.0, 32.0]


def run_delta_ablation(graph_cache, results_dir):
    g = with_uniform_weights(graph_cache.load("v-ewk"), seed=15)
    compressed = TriangleReduction(1.0, variant="max_weight").compress(g, seed=1).graph
    rows = []
    reference = {}
    for label, graph in (("original", g), ("EO-TR p=1.0", compressed)):
        for delta in DELTAS:
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                res = delta_stepping(graph, 0, delta=delta)
                best = min(best, time.perf_counter() - start)
            reference[(label, delta)] = res.distance
            rows.append([label, delta, best, res.num_reached])
    headers = ["graph", "delta", "seconds", "reached"]
    text = format_table(rows, headers, title="Ablation: delta-stepping bucket width")
    emit(results_dir, "ablation_delta_stepping", text, rows, headers)

    # --- correctness is delta-invariant (only speed changes) ---
    for label in ("original", "EO-TR p=1.0"):
        base = reference[(label, DELTAS[0])]
        for delta in DELTAS[1:]:
            other = reference[(label, delta)]
            assert np.allclose(
                np.nan_to_num(base, posinf=-1), np.nan_to_num(other, posinf=-1)
            ), f"{label}: distances must not depend on delta"
    # Delta choice matters: the best and worst runtimes differ measurably.
    for label in ("original", "EO-TR p=1.0"):
        times = [r[2] for r in rows if r[0] == label]
        assert max(times) > 1.2 * min(times), f"{label}: delta sweep should matter"
    return rows


def test_ablation_delta_stepping(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_delta_ablation, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == 2 * len(DELTAS)
