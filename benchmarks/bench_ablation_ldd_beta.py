"""Ablation: the low-diameter-decomposition parameter β (spanner design).

The spanner construction (§4.5.3) hinges on one knob: β = ln(n)/k.  This
ablation sweeps β directly and measures what the theory predicts:

- cluster count grows with β (each vertex's exponential shift is smaller,
  so more vertices win their own wave);
- the fraction of inter-cluster edges grows with β (MPX: E[crossing] ≈ β·m);
- the resulting spanner's edge count therefore grows with β — small β
  (large k) is where the big compression lives, which is exactly the
  Fig. 5 "threshold" behaviour.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.mappings import low_diameter_decomposition

BETAS = [0.05, 0.1, 0.3, 0.6, 1.2]


def run_ldd_ablation(graph_cache, results_dir):
    g = graph_cache.load("v-ewk")
    rows = []
    for beta in BETAS:
        ldd = low_diameter_decomposition(g, beta, seed=13)
        mp = ldd.mapping
        crossing = (mp[g.edge_src] != mp[g.edge_dst]).mean()
        tree_edges = int((ldd.parent_edge_ids >= 0).sum())
        rows.append(
            [
                beta,
                ldd.num_clusters,
                float(crossing),
                tree_edges,
                tree_edges + len(np.unique(
                    np.minimum(mp[g.edge_src], mp[g.edge_dst]) * np.int64(ldd.num_clusters)
                    + np.maximum(mp[g.edge_src], mp[g.edge_dst])
                )) ,
            ]
        )
    headers = ["beta", "clusters", "crossing_edge_fraction", "tree_edges", "spanner_edges_upper"]
    text = format_table(rows, headers, title="Ablation: LDD beta sweep (v-ewk)")
    emit(results_dir, "ablation_ldd_beta", text, rows, headers)

    # --- theory shapes ---
    clusters = [r[1] for r in rows]
    crossing = [r[2] for r in rows]
    assert all(a <= b for a, b in zip(clusters, clusters[1:])), "clusters grow with beta"
    assert all(a <= b + 0.02 for a, b in zip(crossing, crossing[1:])), (
        "crossing-edge fraction grows with beta"
    )
    # MPX expectation: crossing fraction is O(beta) — check within a factor.
    for beta, frac in zip(BETAS, crossing):
        assert frac <= 6 * beta + 0.05, f"beta={beta}: crossing {frac} too high"
    return rows


def test_ablation_ldd_beta(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_ldd_ablation, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(BETAS)
