"""Ablation: approximate triangle discovery for TR (§4.3).

The paper notes that "numerous approximate schemes find fractions of all
triangles in a graph much faster than O(m^{3/2}) ... further reducing the
cost of lossy compression based on TR".  This ablation quantifies the
tradeoff on a triangle-rich graph: sweep the discovery subsample
probability and measure

- compression time (should fall superlinearly: listing cost scales with
  the subsample's m^{3/2}),
- discovered triangles and achieved edge reduction (fall with the cube /
  near-cube of the subsample probability).
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.triangle_reduction import TriangleReduction

PROBS = [1.0, 0.7, 0.4, 0.2]


def run_approx_tr(graph_cache, results_dir):
    g = graph_cache.load("s-cds")
    rows = []
    for prob in PROBS:
        scheme = TriangleReduction(
            0.5, approx_listing_p=None if prob == 1.0 else prob
        )
        best = float("inf")
        res = None
        for _ in range(2):
            start = time.perf_counter()
            res = scheme.compress(g, seed=19)
            best = min(best, time.perf_counter() - start)
        rows.append(
            [
                "exact" if prob == 1.0 else f"subsample {prob}",
                best,
                res.extras["triangles"],
                res.edge_reduction,
            ]
        )
    headers = ["discovery", "seconds", "triangles_found", "edge_reduction"]
    text = format_table(rows, headers, title="Ablation: approximate triangle discovery for TR (s-cds)")
    emit(results_dir, "ablation_approx_tr", text, rows, headers)

    # --- shapes ---
    triangles = [r[2] for r in rows]
    reductions = [r[3] for r in rows]
    assert all(a >= b for a, b in zip(triangles, triangles[1:])), (
        "fewer triangles found at smaller subsamples"
    )
    assert all(a >= b - 0.01 for a, b in zip(reductions, reductions[1:])), (
        "less reduction at smaller subsamples"
    )
    # Triangle discovery scales ~ prob^3 (all three edges must survive).
    for prob, found in zip(PROBS[1:], triangles[1:]):
        expected = prob**3 * triangles[0]
        assert 0.3 * expected <= found <= 3.0 * expected, (
            f"subsample {prob}: found {found}, expected ~{expected:.0f}"
        )
    return rows


def test_ablation_approx_tr(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_approx_tr, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(PROBS)
