"""Figure 6: compression-ratio analysis of scheme *variants* at p = 0.5.

Left panel — spectral sparsification with Υ ∝ average degree vs
Υ ∝ log n across many graphs (variants give different size reductions
depending on the graph).  Right panel — plain 0.5-1-TR vs CT-0.5-1-TR vs
EO-0.5-1-TR on five graphs.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.spectral import SpectralSparsifier
from repro.compress.triangle_reduction import TriangleReduction

SPECTRAL_GRAPHS = [
    "h-dar", "h-din", "h-dit", "h-dsk", "h-wdb", "h-wen", "h-wit",
    "l-act", "m-twt", "s-frs", "s-gmc", "s-ljn", "s-ork", "v-wbb",
]
TR_GRAPHS = ["h-wdb", "h-wen", "s-ljn", "s-ork", "h-wit"]


def run_fig6_left(graph_cache, results_dir):
    rows = []
    for gname in SPECTRAL_GRAPHS:
        g = graph_cache.load(gname)
        row = [gname]
        for variant in ("avgdeg", "logn"):
            res = SpectralSparsifier(0.5, variant=variant).compress(g, seed=2)
            row.append(res.edge_reduction)
        rows.append(row)
    headers = ["graph", "spectral-avgdeg", "spectral-logn"]
    text = format_table(rows, headers, title="Figure 6 (left): spectral variants, p=0.5")
    emit(results_dir, "fig6_left_spectral_variants", text, rows, headers)
    # Shape: variants differ per graph, and both actually reduce edges
    # on the heavy-tailed graphs.
    differing = sum(1 for r in rows if abs(r[1] - r[2]) > 0.01)
    assert differing >= len(rows) // 2, "variants should differ on most graphs"
    return rows


def run_fig6_right(graph_cache, results_dir):
    rows = []
    for gname in TR_GRAPHS:
        g = graph_cache.load(gname)
        row = [gname]
        for variant in ("basic", "count_triangles", "edge_once"):
            res = TriangleReduction(0.5, variant=variant).compress(g, seed=2)
            row.append(res.edge_reduction)
        rows.append(row)
    headers = ["graph", "0.5-1-TR", "CT-0.5-1-TR", "EO-0.5-1-TR"]
    text = format_table(rows, headers, title="Figure 6 (right): TR variants, p=0.5")
    emit(results_dir, "fig6_right_tr_variants", text, rows, headers)
    # Shape: the edge-once discipline cannot delete more than basic
    # (every deletion lottery touches a distinct edge at most once).
    for r in rows:
        assert r[3] <= r[1] + 0.02, f"EO exceeded basic reduction on {r[0]}"
        assert r[1] > 0, f"no reduction at all on {r[0]}"
    return rows


def test_fig6_left(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_fig6_left, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(SPECTRAL_GRAPHS)


def test_fig6_right(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_fig6_right, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(TR_GRAPHS)
