"""Table 6: average number of triangles per vertex after compression.

Twelve graphs × {original, 0.2-1-TR, 0.9-1-TR, uniform p=0.8/0.5/0.2,
spanner k=2/16/128, spectral p=0.5/0.05/0.005} — the paper's observation
is that *almost all schemes, especially spanners, eliminate a large
fraction of triangles*, while TR's impact scales with its p.

Note on conventions: in Table 6 "Uniform (p=x)" is the KEPT fraction and
the spectral columns list the Υ scale p of §4.2.1 (smaller ⇒ sparser).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.algorithms.triangles import count_triangles
from repro.analytics.report import format_table
from repro.compress.registry import make_scheme

GRAPHS = [
    "s-you", "s-flx", "s-flc", "s-cds", "s-lib", "s-pok",
    "h-dbp", "h-hud", "l-cit", "l-dbl", "v-ewk", "v-skt",
]
# Table 6's "Uniform (p=x)" is the REMOVED fraction (Unif .8 keeps 20% and
# leaves ~0.008 T); our scheme takes the kept fraction, hence 1-x below.
SCHEMES = [
    ("0.2-1-TR", "0.2-1-TR"),
    ("0.9-1-TR", "0.9-1-TR"),
    ("uniform(p=0.2)", "Unif .8"),
    ("uniform(p=0.5)", "Unif .5"),
    ("uniform(p=0.8)", "Unif .2"),
    ("spanner(k=2)", "Span 2"),
    ("spanner(k=16)", "Span 16"),
    ("spanner(k=128)", "Span 128"),
    ("spectral(p=0.5)", "Spec .5"),
    ("spectral(p=0.05)", "Spec .05"),
    ("spectral(p=0.005)", "Spec .005"),
]


def run_table6(graph_cache, results_dir):
    rows = []
    per_vertex: dict[tuple, float] = {}
    for gname in GRAPHS:
        g = graph_cache.load(gname)
        original = count_triangles(g) / g.n
        row = [gname, original]
        per_vertex[(gname, "orig")] = original
        for spec, _ in SCHEMES:
            sub = make_scheme(spec).compress(g, seed=4).graph
            value = count_triangles(sub) / g.n
            row.append(value)
            per_vertex[(gname, spec)] = value
        rows.append(row)
    headers = ["graph", "Original"] + [label for _, label in SCHEMES]
    text = format_table(rows, headers, title="Table 6: avg triangles per vertex")
    emit(results_dir, "table6_triangles_per_vertex", text, rows, headers)

    # --- shape assertions ---
    for gname in GRAPHS:
        t0 = per_vertex[(gname, "orig")]
        if t0 == 0:
            continue
        # TR: p=0.9 destroys far more triangles than p=0.2.
        assert per_vertex[(gname, "0.9-1-TR")] <= per_vertex[(gname, "0.2-1-TR")]
        # Uniform: remaining triangles scale with kept^3.
        assert (
            per_vertex[(gname, "uniform(p=0.8)")]
            >= per_vertex[(gname, "uniform(p=0.5)")]
            >= per_vertex[(gname, "uniform(p=0.2)")]
        )
        # Spanners at large k eliminate nearly all triangles.
        assert per_vertex[(gname, "spanner(k=128)")] <= 0.15 * t0
    return rows


def test_table6_triangles(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_table6, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS)
