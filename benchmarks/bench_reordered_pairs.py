"""§7.2: reordered neighbor pairs for BC and TC-per-vertex.

The paper's second accuracy metric: after compression, how many pairs of
*neighboring* vertices swapped their relative order under betweenness
centrality and per-vertex triangle counts?  Schemes are compared at a
matched removed-edge budget (the §5 caveat).

The paper claims spectral sparsification preserves the TC order best; on
our stand-ins uniform sampling does (it scales all counts by ~p³, moving
the order least) — recorded as a deviation in EXPERIMENTS.md.  The bench
asserts the robust parts: all values are small for mild compression, and
the measurement is deterministic.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.algorithms.betweenness import betweenness_centrality
from repro.algorithms.triangles import triangles_per_vertex
from repro.analytics.report import format_table
from repro.compress.spectral import SpectralSparsifier
from repro.compress.uniform import RandomUniformSampling
from repro.compress.triangle_reduction import TriangleReduction
from repro.metrics.ordering import reordered_neighbor_pairs

GRAPHS = ["s-pok", "l-dbl"]


def run_reordered(graph_cache, results_dir):
    rows = []
    for gname in GRAPHS:
        g = graph_cache.load(gname)
        bc0 = betweenness_centrality(g, num_sources=64, seed=0)
        tv0 = triangles_per_vertex(g).astype(float)

        spec = SpectralSparsifier(0.6, reweight=False).compress(g, seed=8).graph
        keep = spec.num_edges / g.num_edges
        candidates = {
            "spectral(0.6)": spec,
            f"uniform({keep:.2f})": RandomUniformSampling(keep).compress(g, seed=8).graph,
            "EO-0.8-1-TR": TriangleReduction(0.8, variant="edge_once").compress(g, seed=8).graph,
        }
        for label, sub in candidates.items():
            bc1 = betweenness_centrality(sub, num_sources=64, seed=0)
            tv1 = triangles_per_vertex(sub).astype(float)
            rows.append(
                [
                    gname,
                    label,
                    sub.num_edges / g.num_edges,
                    reordered_neighbor_pairs(g, bc0, bc1),
                    reordered_neighbor_pairs(g, tv0, tv1),
                ]
            )
    headers = ["graph", "scheme", "ratio", "reordered_bc", "reordered_tc"]
    text = format_table(rows, headers, title="§7.2: reordered neighboring pairs")
    emit(results_dir, "reordered_pairs", text, rows, headers)

    # --- shape assertions ---
    for row in rows:
        assert 0.0 <= row[3] <= 0.6 and 0.0 <= row[4] <= 0.6
    # EO-TR touches fewer edges -> smallest BC reordering per graph.
    for gname in GRAPHS:
        series = {r[1]: r for r in rows if r[0] == gname}
        tr_row = series["EO-0.8-1-TR"]
        spec_row = series["spectral(0.6)"]
        assert tr_row[3] <= spec_row[3] + 0.05
    return rows


def test_reordered_pairs(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_reordered, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS) * 3
