"""§7.1 weighted-graph experiments: MST and SSSP under Triangle Reduction.

The paper's findings (results "excluded due to space constraints" but
described in the text):

- on very sparse road networks, TR's compression ratio — and hence any
  speedup — is ~zero (no triangles to reduce);
- the max-weight TR variant preserves the MST weight exactly;
- MST runtime "depends mostly on n" so it barely changes; SSSP follows
  the BFS speedup pattern on triangle-rich graphs;
- very high p can enlarge the diameter/iteration count (slowdowns).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit
from repro.algorithms.mst import kruskal
from repro.algorithms.sssp import delta_stepping
from repro.analytics.report import format_table
from repro.compress.triangle_reduction import TriangleReduction
from repro.graphs.weights import with_uniform_weights


def _timed(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return out, time.perf_counter() - start


def run_weighted(graph_cache, results_dir):
    rows = []
    cases = {
        "v-usa": graph_cache.load("v-usa"),  # weighted road network
        "v-ewk": with_uniform_weights(graph_cache.load("v-ewk"), seed=9),
    }
    for gname, g in cases.items():
        mst0, t_mst0 = _timed(kruskal, g)
        sssp0, t_sssp0 = _timed(delta_stepping, g, 0)
        for p in (0.5, 1.0):
            res = TriangleReduction(p, variant="max_weight").compress(g, seed=10)
            sub = res.graph
            mst1, t_mst1 = _timed(kruskal, sub)
            sssp1, t_sssp1 = _timed(delta_stepping, sub, 0)
            reachable = np.isfinite(sssp0.distance) & np.isfinite(sssp1.distance)
            stretch = (
                float(np.max(sssp1.distance[reachable] / np.maximum(sssp0.distance[reachable], 1e-12)))
                if reachable.sum() > 1
                else 1.0
            )
            rows.append(
                [
                    gname,
                    p,
                    res.edge_reduction,
                    mst0.total_weight,
                    mst1.total_weight,
                    (t_mst0 - t_mst1) / t_mst0 if t_mst0 > 0 else 0.0,
                    (t_sssp0 - t_sssp1) / t_sssp0 if t_sssp0 > 0 else 0.0,
                    stretch,
                ]
            )
    headers = [
        "graph", "p", "edge_reduction", "mst_weight(orig)", "mst_weight(compressed)",
        "mst_speedup", "sssp_speedup", "max_sssp_stretch",
    ]
    text = format_table(rows, headers, title="§7.1: weighted MST/SSSP under max-weight TR")
    emit(results_dir, "weighted_mst_sssp", text, rows, headers)

    # --- shape assertions ---
    for row in rows:
        gname, p, reduction, w0, w1 = row[0], row[1], row[2], row[3], row[4]
        # Max-weight TR preserves the MST weight exactly.
        assert abs(w0 - w1) < 1e-6, f"{gname}: MST weight changed"
        if gname == "v-usa":
            # Road network: triangle-free -> no compression at all.
            assert reduction == 0.0
        else:
            assert reduction > 0.02
    return rows


def test_weighted_mst_sssp(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_weighted, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == 4
