"""§7.4 / §4.6: the clustered low-rank (SVD) baseline.

The paper compared Slim Graph kernels against low-rank approximation of
the adjacency matrix and found "significant storage overheads (cf.
Table 2) and consistently very high error rates"; we re-run that
comparison: edge-set error (symmetric difference) and dense-factor
storage vs a spectral sparsifier at a similar edge budget.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.lowrank import ClusteredLowRankApproximation
from repro.compress.spectral import SpectralSparsifier
from repro.graphs import generators as gen


def _edge_error(g, approx) -> float:
    """|E Δ E'| / |E| on the same vertex set."""
    n = np.int64(g.n)
    a = set((g.edge_src * n + g.edge_dst).tolist())
    b = set((approx.edge_src * n + approx.edge_dst).tolist())
    return len(a ^ b) / max(len(a), 1)


def run_lowrank(results_dir):
    g = gen.powerlaw_cluster(600, 6, 0.6, seed=41)
    rows = []
    for rank in (2, 8, 16):
        res = ClusteredLowRankApproximation(rank, num_clusters=6, keep_intercluster=False).compress(
            g, seed=1
        )
        rows.append(
            [
                f"lowrank(r={rank})",
                res.graph.num_edges,
                _edge_error(g, res.graph),
                res.extras["dense_storage_floats"],
            ]
        )
    spec = SpectralSparsifier(0.7).compress(g, seed=1)
    rows.append(
        [
            "spectral(p=0.7)",
            spec.graph.num_edges,
            _edge_error(g, spec.graph.with_weights(None)),
            2 * spec.graph.num_edges,  # edge-array storage in scalars
        ]
    )
    headers = ["scheme", "m'", "edge_set_error", "storage_scalars"]
    text = format_table(rows, headers, title="§7.4: clustered low-rank baseline")
    emit(results_dir, "lowrank_baseline", text, rows, headers)

    # --- shape: low-rank error stays high across ranks (the paper's
    # "consistently very high error rates") while a sparsifier's edge error
    # equals only what it deliberately removed.
    lowrank_errors = [r[2] for r in rows[:-1]]
    assert min(lowrank_errors) > 0.4
    assert rows[-1][2] < min(lowrank_errors)
    return rows


def test_lowrank_baseline(benchmark, results_dir):
    rows = benchmark.pedantic(run_lowrank, args=(results_dir,), rounds=1, iterations=1)
    assert len(rows) == 4
