"""Table 5: Kullback–Leibler divergence of PageRank distributions.

For five graphs and seven compression configurations (EO-0.8-1-TR,
EO-1.0-1-TR, uniform p=0.2 / 0.5 — the paper's "p" there is the kept
fraction, spanner k = 2 / 16 / 128), compare the PageRank distribution on
the compressed graph against the original with D_KL.

The experiment is the registered ``table5`` sweep
(:mod:`repro.runner.harness`) — one grid per graph, the original
PageRank distribution computed once per session no matter how many
schemes score against it; ``python -m repro.runner table5`` reproduces it
from the command line (resumably with ``--store``).  This file declares
the run and checks the paper's qualitative shape.

Shape assertions (§7.2): within every scheme family, more compression ⇒
higher KL; EO-TR's divergences sit below uniform p=0.5's.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.registry import build_scheme
from repro.runner.harness import TABLE5_SCHEMES, get_sweep, run_sweep

GRAPHS = list(get_sweep("table5").graphs)


def run_table5(graph_cache, results_dir):
    result = run_sweep(
        "table5", graph_loader=lambda name: graph_cache.load(name, seed=0)
    )
    # One KL cell per (graph, scheme): pagerank only, metric "kl".
    assert result.perf["cells"] == len(GRAPHS) * len(TABLE5_SCHEMES)
    # The original PageRank distribution ran once per graph session no
    # matter how many schemes scored against it.
    assert all(g["baseline_computations"] == 1 for g in result.perf["grids"])

    rows = []
    values: dict[tuple, float] = {}
    for gname in GRAPHS:
        per_graph = result.table.filter(graph=gname)
        row = [gname]
        for (spec, _), cell in zip(TABLE5_SCHEMES, per_graph):
            # Cells carry the built scheme's full canonical label
            # (defaults expanded) in declaration order.
            assert cell.scheme == build_scheme(spec).spec().to_string()
            assert cell.metric == "kl_divergence"
            row.append(cell.value)
            values[(gname, spec)] = cell.value
        rows.append(row)
    headers = ["graph"] + [label for _, label in TABLE5_SCHEMES]
    text = format_table(
        rows, headers, title="Table 5: KL divergence of PageRank distributions"
    )
    emit(results_dir, "table5_pagerank_kl", text, rows, headers)

    # --- shape assertions (Table 5: KL grows with compression) ---
    for gname in GRAPHS:
        # Uniform: removing 50% diverges more than removing 20%.
        assert values[(gname, "uniform(p=0.5)")] >= values[(gname, "uniform(p=0.8)")]
        # TR: reducing every triangle diverges at least as much as 80%.
        assert values[(gname, "EO-1.0-1-TR")] >= values[(gname, "EO-0.8-1-TR")] - 1e-6
        # EO-TR is gentler than dropping half of all edges.
        assert values[(gname, "EO-1.0-1-TR")] <= values[(gname, "uniform(p=0.5)")] + 1e-6
    # Spanners on the road network barely move PageRank (v-usa row ~0).
    assert values[("v-usa", "spanner(k=2)")] < 0.05
    return rows


def test_table5_kl(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_table5, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS)
