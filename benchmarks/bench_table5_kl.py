"""Table 5: Kullback–Leibler divergence of PageRank distributions.

For five graphs and seven compression configurations (EO-0.8-1-TR,
EO-1.0-1-TR, uniform p=0.2 / 0.5 — the paper's "p" there is the kept
fraction, spanner k = 2 / 16 / 128), compare the PageRank distribution on
the compressed graph against the original with D_KL.  Each graph's column
is one ``Session.grid`` sweep (schemes × pagerank × kl).

Shape assertions (§7.2): within every scheme family, more compression ⇒
higher KL; EO-TR's divergences sit below uniform p=0.5's.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.analytics.session import Session

GRAPHS = ["s-you", "h-hud", "l-dbl", "v-skt", "v-usa"]
# Table 5's "Uniform (p=x)" states the REMOVED fraction; our scheme takes
# the kept fraction, hence uniform(p=1-x) below.
SCHEMES = [
    ("EO-0.8-1-TR", "EO-0.8-1-TR"),
    ("EO-1.0-1-TR", "EO-1.0-1-TR"),
    ("uniform(p=0.8)", "Uniform p=0.2"),
    ("uniform(p=0.5)", "Uniform p=0.5"),
    ("spanner(k=2)", "Spanner k=2"),
    ("spanner(k=16)", "Spanner k=16"),
    ("spanner(k=128)", "Spanner k=128"),
]


def run_table5(graph_cache, results_dir):
    rows = []
    values: dict[tuple, float] = {}
    for gname in GRAPHS:
        g = graph_cache.load(gname)
        # One grid sweep per graph: all seven scheme configurations ×
        # PageRank × KL in a single call; the original PageRank
        # distribution is computed once per session no matter how many
        # schemes score against it.
        session = Session(g, seed=3, pr_iterations=100)
        table = session.grid([spec for spec, _ in SCHEMES], ["pr"], ["kl"])
        assert session.baseline_computations == 1
        row = [gname]
        # Grid rows preserve the (deduplicated) scheme order: one cell per
        # scheme here, since there is a single algorithm and metric.
        for (spec, _), cell in zip(SCHEMES, table):
            row.append(cell.value)
            values[(gname, spec)] = cell.value
        rows.append(row)
    headers = ["graph"] + [label for _, label in SCHEMES]
    text = format_table(
        rows, headers, title="Table 5: KL divergence of PageRank distributions"
    )
    emit(results_dir, "table5_pagerank_kl", text, rows, headers)

    # --- shape assertions (Table 5: KL grows with compression) ---
    for gname in GRAPHS:
        # Uniform: removing 50% diverges more than removing 20%.
        assert values[(gname, "uniform(p=0.5)")] >= values[(gname, "uniform(p=0.8)")]
        # TR: reducing every triangle diverges at least as much as 80%.
        assert values[(gname, "EO-1.0-1-TR")] >= values[(gname, "EO-0.8-1-TR")] - 1e-6
        # EO-TR is gentler than dropping half of all edges.
        assert values[(gname, "EO-1.0-1-TR")] <= values[(gname, "uniform(p=0.5)")] + 1e-6
    # Spanners on the road network barely move PageRank (v-usa row ~0).
    assert values[("v-usa", "spanner(k=2)")] < 0.05
    return rows


def test_table5_kl(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_table5, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS)
