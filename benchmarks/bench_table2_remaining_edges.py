"""Table 2: "#remaining edges" formulas of every Slim Graph scheme.

Each row of Table 2 states the expected edge count after compression:

- spectral: ∝ max(log(3/p), log n)·n-ish — every vertex keeps ~Υ edges;
- uniform: (1-p_remove)·m;
- TR: m − pT (up to triangle overlap);
- spanner: O(n^{1+1/k} log k);
- summarization: m ± 2εm.

This bench measures all five against their formulas on one graph.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import emit
from repro.algorithms.triangles import count_triangles
from repro.analytics.report import format_table
from repro.compress.spanner import Spanner
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.uniform import RandomUniformSampling
from repro.graphs import generators as gen


def run_table2(results_dir):
    g = gen.powerlaw_cluster(800, 8, 0.7, seed=31)
    m, n = g.num_edges, g.n
    t = count_triangles(g)
    rows = []

    # Uniform: E[m'] = keep * m.
    keep = 0.6
    m_uni = RandomUniformSampling(keep).compress(g, seed=1).graph.num_edges
    rows.append(["uniform", f"(1-p)m = {keep * m:.0f}", m_uni,
                 abs(m_uni - keep * m) < 4 * math.sqrt(keep * (1 - keep) * m)])

    # Spectral: every vertex keeps <= ~Υ + its sure edges; m' ~ sum p_uv.
    p = 0.3
    from repro.compress.spectral import edge_keep_probabilities

    expected = float(edge_keep_probabilities(g, p, "logn").sum())
    m_spec = SpectralSparsifier(p).compress(g, seed=2).graph.num_edges
    rows.append(["spectral", f"sum p_uv = {expected:.0f}", m_spec,
                 abs(m_spec - expected) < 4 * math.sqrt(expected)])

    # TR: m' >= m - pT, and close to it when triangles overlap little.
    p_tr = 0.5
    m_tr = TriangleReduction(p_tr).compress(g, seed=3).graph.num_edges
    rows.append(["p-1-TR", f">= m - pT = {m - p_tr * t:.0f}", m_tr,
                 m_tr >= m - p_tr * t - 4 * math.sqrt(max(t, 1))])

    # Spanner: m' = O(n^{1+1/k} log k).
    k = 4
    m_span = Spanner(k).compress(g, seed=4).graph.num_edges
    budget = 4 * n ** (1 + 1 / k) * (1 + math.log(k))
    rows.append(["spanner", f"O(n^(1+1/k)) <= {budget:.0f}", m_span, m_span <= budget])

    # Summarization: m' in m ± 2εm.
    eps = 0.4
    m_sum = LossySummarization(eps).compress(g, seed=5).graph.num_edges
    rows.append(["summarization", f"m ± 2em in [{m * (1 - 2 * eps):.0f}, {m * (1 + 2 * eps):.0f}]",
                 m_sum, abs(m_sum - m) <= 2 * eps * m])

    headers = ["scheme", "Table 2 formula", "measured m'", "holds"]
    text = format_table(rows, headers, title=f"Table 2: remaining edges (m={m}, T={t})")
    emit(results_dir, "table2_remaining_edges", text, rows, headers)
    assert all(r[3] for r in rows), [r[0] for r in rows if not r[3]]
    return rows


def test_table2_remaining_edges(benchmark, results_dir):
    rows = benchmark.pedantic(run_table2, args=(results_dir,), rounds=1, iterations=1)
    assert len(rows) == 5
