"""Figure 7: impact of spanners on degree distributions.

The paper plots (degree, fraction-of-vertices) clouds for Twitter,
Friendster and .it-domains at k ∈ {no compression, 2, 32} and observes
that spanners "strengthen the power law" — the log-log cloud approaches a
straight line as compression grows.

We emit the histogram series (the figure's raw data) and summarize each
cloud with the power-law fit residual; the k=2 residual must improve on
the original for every graph.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.spanner import Spanner
from repro.metrics.distributions import degree_histogram, fit_power_law

GRAPHS = ["m-twt", "s-frs", "h-dit"]
KS = [2, 32]


def run_fig7(graph_cache, results_dir):
    rows = []
    series_rows = []
    for gname in GRAPHS:
        g = graph_cache.load(gname)
        fits = {"none": fit_power_law(g)}
        for deg, frac in zip(*degree_histogram(g)):
            series_rows.append([gname, "none", int(deg), float(frac)])
        for k in KS:
            sub = Spanner(k).compress(g, seed=5).graph
            fits[f"k={k}"] = fit_power_law(sub)
            for deg, frac in zip(*degree_histogram(sub)):
                series_rows.append([gname, f"k={k}", int(deg), float(frac)])
        rows.append(
            [
                gname,
                fits["none"].residual,
                fits["k=2"].residual,
                fits["k=32"].residual,
                fits["none"].slope,
                fits["k=32"].slope,
            ]
        )
    headers = [
        "graph",
        "residual(orig)",
        "residual(k=2)",
        "residual(k=32)",
        "slope(orig)",
        "slope(k=32)",
    ]
    text = format_table(
        rows, headers, title="Figure 7: spanners strengthen the power law"
    )
    emit(results_dir, "fig7_spanner_degree_distributions", text, rows, headers)
    from repro.analytics.report import write_csv

    write_csv(
        series_rows,
        ["graph", "k", "degree", "fraction"],
        results_dir / "fig7_series.csv",
    )

    # --- shape assertion: spanner compression straightens the cloud in
    # aggregate.  At the paper's 10⁷-vertex scale the effect is visible on
    # every graph and every k; at our scaled-down size it is robust in the
    # mean and per-graph for the best k.
    import numpy as np

    mean_orig = float(np.mean([r[1] for r in rows]))
    mean_k2 = float(np.mean([r[2] for r in rows]))
    assert mean_k2 < mean_orig, "k=2 should straighten the power law on average"
    for row in rows:
        best = min(row[2], row[3])
        assert best < row[1] + 0.08, f"{row[0]}: no k straightened the cloud"
    return rows


def test_fig7_spanner_degdist(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_fig7, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS)
