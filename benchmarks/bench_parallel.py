"""Worker graph-delivery benchmark: npz reload vs shared-memory attach.

The historical parallel runner had every pooled worker re-load the graph
snapshot in its initializer — N workers, N decompressions, N private CSR
copies.  ``graph_load="shm"`` replaces that with one shared-memory
segment the workers attach read-only views over.  This benchmark proves
the two claims that change rides on:

- **load time** — a worker's graph acquisition drops from an npz
  decompress to an attach-and-slice (target at 1e6 edges: >= 10x);
- **memory** — aggregate *private* worker memory (USS, from
  ``/proc/self/smaps_rollup``) stays near one CSR copy total instead of
  one per worker.  Peak RSS is reported too but is not the assertion:
  ``ru_maxrss`` charges shared pages to every process that touches them.

Identity is asserted before speed: both modes must produce cell values
identical to each other (the equality-vs-in-memory guarantee lives in
``tests/test_runner_shm.py``).

Emits ``BENCH_parallel.json`` with per-mode wall time and per-worker
``load_seconds`` / ``peak_rss_bytes`` / ``private_bytes`` / ``load_mode``.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # 1e6 edges
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analytics.session import Session
from repro.graphs.generators import erdos_renyi
from repro.runner.harness import write_perf_record

#: Full-mode graph size (edges) — the ISSUE's target scale.
FULL_EDGES = 1_000_000
SMOKE_EDGES = 20_000

JOBS = 4
SCHEMES = ["uniform(p=0.5)", "spanner(k=8)"]
ALGORITHMS = ["pr", "cc"]
#: None = each algorithm's default metric plan (pr -> divergences, etc.).
METRICS = None


def _comparable(table):
    return sorted(
        (c.scheme, c.algorithm, c.metric, c.value, c.compression_ratio, c.seed)
        for c in table
    )


def _run_mode(graph, mode: str) -> dict:
    session = Session(graph, seed=0, jobs=JOBS, graph_load=mode)
    table = session.grid(SCHEMES, ALGORITHMS, METRICS, seed=0)
    perf = session.last_grid_perf
    workers = list(perf["workers"].values())
    return {
        "mode": perf["graph_load"],
        "wall_seconds": perf["wall_seconds"],
        "workers": workers,
        "cells": _comparable(table),
        "load_seconds": [w["load_seconds"] for w in workers],
        "private_bytes": [w["private_bytes"] for w in workers],
        "peak_rss_bytes": [w["peak_rss_bytes"] for w in workers],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graph; skips the >=10x load-ratio assertion "
        "(attach time is noise-dominated at small sizes)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results"),
        help="directory for BENCH_parallel.json",
    )
    args = parser.parse_args(argv)

    edges = SMOKE_EDGES if args.smoke else FULL_EDGES
    print(f"building ER graph with ~{edges:,} edges ...", flush=True)
    graph = erdos_renyi(edges // 10, m=edges, seed=42)
    graph_bytes = sum(
        arr.nbytes
        for arr in (
            graph.edge_src,
            graph.edge_dst,
            graph.indptr,
            graph.indices,
            graph.arc_edge_ids,
        )
    )
    print(f"graph: n={graph.n:,} m={graph.num_edges:,} csr={graph_bytes/1e6:.1f}MB")

    results = {}
    for mode in ("npz", "shm"):
        print(f"running grid with graph_load={mode} ...", flush=True)
        results[mode] = _run_mode(graph, mode)
        loads = results[mode]["load_seconds"]
        print(
            f"  wall={results[mode]['wall_seconds']:.2f}s  "
            f"worker load_seconds: min={min(loads):.4f} max={max(loads):.4f}"
        )

    # -- identity: same cells from both modes --------------------------- #
    assert results["npz"]["cells"] == results["shm"]["cells"], (
        "shm-attach grid produced different cell values than npz-reload"
    )

    npz_load = max(results["npz"]["load_seconds"])
    shm_load = max(results["shm"]["load_seconds"])
    ratio = npz_load / shm_load if shm_load > 0 else float("inf")

    uss = {
        mode: [b for b in results[mode]["private_bytes"] if b is not None]
        for mode in results
    }
    summary = {
        "edges": graph.num_edges,
        "n": graph.n,
        "graph_csr_bytes": graph_bytes,
        "jobs": JOBS,
        "smoke": args.smoke,
        "load_seconds_npz_max": npz_load,
        "load_seconds_shm_max": shm_load,
        "load_speedup": ratio,
        "aggregate_private_bytes_npz": sum(uss["npz"]) if uss["npz"] else None,
        "aggregate_private_bytes_shm": sum(uss["shm"]) if uss["shm"] else None,
        "modes": {
            mode: {k: r[k] for k in ("wall_seconds", "workers")}
            for mode, r in results.items()
        },
    }
    print(
        f"\nworker graph load: npz {npz_load:.4f}s vs shm {shm_load:.4f}s "
        f"({ratio:.0f}x)"
    )
    if uss["npz"] and uss["shm"]:
        agg_npz, agg_shm = sum(uss["npz"]), sum(uss["shm"])
        print(
            f"aggregate worker USS: npz {agg_npz/1e6:.0f}MB vs "
            f"shm {agg_shm/1e6:.0f}MB (graph is {graph_bytes/1e6:.0f}MB)"
        )
        if not args.smoke:
            # One private copy per npz worker vs. shared pages for shm
            # workers: the shm aggregate must undercut npz by at least
            # the graph's weight for all but one worker.
            saved = agg_npz - agg_shm
            floor = graph_bytes * (JOBS - 2)
            assert saved >= floor, (
                f"shm saved only {saved/1e6:.0f}MB of aggregate USS; "
                f"expected >= {floor/1e6:.0f}MB "
                f"({JOBS} workers x {graph_bytes/1e6:.0f}MB graph)"
            )
    if not args.smoke:
        assert ratio >= 10, (
            f"shm attach only {ratio:.1f}x faster than npz reload "
            f"(npz {npz_load:.4f}s, shm {shm_load:.4f}s); expected >= 10x"
        )

    path = write_perf_record("parallel", summary, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
