"""Figure 5: storage and performance tradeoffs of lossy compression.

The paper's flagship figure: for each kernel family — edge kernels
(uniform sampling and spectral sparsification), triangle kernels
(p-1-TR), and subgraph kernels (spanners, summarization) — it plots the
relative runtime difference of BFS / CC / PR / TC on compressed vs
original graphs, colored by compression ratio, across the parameter range,
on three graphs chosen by triangles-per-vertex (s-cds ≫ v-ewk > s-pok).

The experiment itself is the registered ``fig5`` sweep
(:mod:`repro.runner.harness`): this file is a thin declaration that runs
it through the harness (``python -m repro.runner fig5`` reproduces it
from the command line, resumably with ``--store``) and checks the
paper's qualitative shape on the resulting cells.

Shape assertions (from §7.1):
- spanners give the largest edge reductions, p-1-TR the smallest;
- uniform/spectral reductions scale with p across the whole range;
- fewer edges ⇒ algorithms do not get slower on average (performance
  follows storage).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.registry import build_scheme
from repro.runner.harness import FIG5_PANELS, get_sweep, run_sweep

GRAPHS = list(get_sweep("fig5").graphs)


def _label(spec: str) -> str:
    """Grid cells carry the built scheme's full canonical label (defaults
    expanded), not the shorthand the sweep was declared with."""
    return build_scheme(spec).spec().to_string()


def run_fig5(graph_cache, results_dir):
    result = run_sweep(
        "fig5", graph_loader=lambda name: graph_cache.load(name, seed=0)
    )
    # Default metrics: exactly one cell per (graph, scheme, algorithm).
    by_cell = {(c.graph, c.scheme, c.algorithm): c for c in result.table}

    rows = []
    reductions: dict[tuple, float] = {}
    for gname in GRAPHS:
        for panel, entries in FIG5_PANELS.items():
            for pname, value, spec in entries:
                ratio = None
                for algorithm in get_sweep("fig5").algorithms:
                    cell = by_cell[(gname, _label(spec), algorithm)]
                    ratio = cell.compression_ratio
                    rows.append(
                        [
                            gname,
                            panel,
                            f"{pname}={value}",
                            # Paper-style short name for the table.
                            "bfs" if algorithm.startswith("bfs") else algorithm,
                            ratio,
                            cell.relative_runtime_difference,
                        ]
                    )
                reductions[(gname, panel, value)] = 1.0 - ratio
    headers = ["graph", "panel", "param", "algorithm", "compression_ratio", "rel_runtime_diff"]
    text = format_table(rows, headers, title="Figure 5: storage/performance tradeoffs")
    emit(results_dir, "fig5_tradeoffs", text, rows, headers)

    # Every algorithm column — including BFS, via its scalar surface —
    # carries real measured runtimes, not placeholder zeros.
    for algorithm in ("bfs", "pr", "cc", "tc"):
        assert any(
            c.original_seconds > 0
            for c in result.table
            if c.algorithm.startswith(algorithm)
        ), f"{algorithm}: no timed cells"

    # --- shape assertions (§7.1: "In most cases, spanners and p-1-TR
    # ensure the largest and smallest storage reductions") ---
    for gname in GRAPHS:
        spanner_best = max(
            reductions[(gname, "spanner", k)] for k in (8, 32, 128)
        )
        tr_mid = reductions[(gname, "tr", 0.5)]
        uni_mid = reductions[(gname, "uniform", 0.5)]
        # Spanners win everywhere ("largest reductions").
        assert spanner_best >= max(tr_mid, uni_mid), (
            f"{gname}: spanner should give the largest reduction, got "
            f"{spanner_best:.3f} vs tr={tr_mid:.3f}, uniform={uni_mid:.3f}"
        )
        # Uniform reduction tracks 1-p over the range.
        assert (
            reductions[(gname, "uniform", 0.1)]
            > reductions[(gname, "uniform", 0.5)]
            > reductions[(gname, "uniform", 0.9)]
        )
        # Spanner reduction grows with k.
        assert reductions[(gname, "spanner", 32)] >= reductions[(gname, "spanner", 2)]
    # TR "removes only as many edges as the count of triangles": it is the
    # smallest reducer on the triangle-poor graph (s-pok, T/m < 1); on
    # extremely triangle-dense graphs (s-cds) it can exceed uniform — the
    # paper's "in most cases" qualifier.
    assert reductions[("s-pok", "tr", 0.5)] < reductions[("s-pok", "uniform", 0.5)]
    return rows


def test_fig5_tradeoffs(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_fig5, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS) * sum(len(v) for v in FIG5_PANELS.values()) * 4
