"""Figure 5: storage and performance tradeoffs of lossy compression.

The paper's flagship figure: for each kernel family — edge kernels
(uniform sampling and spectral sparsification), triangle kernels
(p-1-TR), and subgraph kernels (spanners, summarization) — it plots the
relative runtime difference of BFS / CC / PR / TC on compressed vs
original graphs, colored by compression ratio, across the parameter range,
on three graphs chosen by triangles-per-vertex (s-cds ≫ v-ewk > s-pok).

Shape assertions (from §7.1):
- spanners give the largest edge reductions, p-1-TR the smallest;
- uniform/spectral reductions scale with p across the whole range;
- fewer edges ⇒ algorithms do not get slower on average (performance
  follows storage).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analytics.evaluation import AlgorithmSpec
from repro.analytics.report import format_table
from repro.analytics.session import Session

GRAPHS = ["s-cds", "s-pok", "v-ewk"]

PANELS = {
    "uniform": [("p", p, f"uniform(p={p})") for p in (0.1, 0.5, 0.9)],
    "spectral": [("p", p, f"spectral(p={p})") for p in (0.005, 0.05, 0.5)],
    "tr": [("p", p, f"{p}-1-TR") for p in (0.1, 0.5, 0.9)],
    "spanner": [("k", k, f"spanner(k={k})") for k in (2, 8, 32, 128)],
    "summarization": [
        ("epsilon", e, f"summarization(epsilon={e})") for e in (0.1, 0.4, 0.7)
    ],
}


def _algorithms():
    from repro.algorithms.components import connected_components
    from repro.algorithms.pagerank import pagerank
    from repro.algorithms.triangles import count_triangles
    from repro.algorithms.bfs import bfs

    return [
        AlgorithmSpec("BFS", lambda g: bfs(g, 0).num_reached, "scalar"),
        AlgorithmSpec("CC", lambda g: connected_components(g).num_components, "scalar"),
        AlgorithmSpec("PR", lambda g: float(pagerank(g, max_iterations=50).ranks.max()), "scalar"),
        AlgorithmSpec("TC", lambda g: count_triangles(g), "scalar"),
    ]


def run_fig5(graph_cache, results_dir):
    rows = []
    reductions: dict[tuple, float] = {}
    for gname in GRAPHS:
        g = graph_cache.load(gname)
        # One session per graph: the original-graph runs of BFS/CC/PR/TC
        # are computed once and reused across all 16 scheme configs.
        session = Session(g, seed=1)
        algorithms = _algorithms()
        for panel, entries in PANELS.items():
            for pname, value, spec in entries:
                records, compressed = session.evaluate(spec, algorithms, seed=1)
                ratio = compressed.num_edges / g.num_edges
                reductions[(gname, panel, value)] = 1.0 - ratio
                for rec in records:
                    rows.append(
                        [
                            gname,
                            panel,
                            f"{pname}={value}",
                            rec.algorithm,
                            ratio,
                            rec.relative_runtime_difference,
                        ]
                    )
    headers = ["graph", "panel", "param", "algorithm", "compression_ratio", "rel_runtime_diff"]
    text = format_table(rows, headers, title="Figure 5: storage/performance tradeoffs")
    emit(results_dir, "fig5_tradeoffs", text, rows, headers)

    # --- shape assertions (§7.1: "In most cases, spanners and p-1-TR
    # ensure the largest and smallest storage reductions") ---
    for gname in GRAPHS:
        spanner_best = max(
            reductions[(gname, "spanner", k)] for k in (8, 32, 128)
        )
        tr_mid = reductions[(gname, "tr", 0.5)]
        uni_mid = reductions[(gname, "uniform", 0.5)]
        # Spanners win everywhere ("largest reductions").
        assert spanner_best >= max(tr_mid, uni_mid), (
            f"{gname}: spanner should give the largest reduction, got "
            f"{spanner_best:.3f} vs tr={tr_mid:.3f}, uniform={uni_mid:.3f}"
        )
        # Uniform reduction tracks 1-p over the range.
        assert (
            reductions[(gname, "uniform", 0.1)]
            > reductions[(gname, "uniform", 0.5)]
            > reductions[(gname, "uniform", 0.9)]
        )
        # Spanner reduction grows with k.
        assert reductions[(gname, "spanner", 32)] >= reductions[(gname, "spanner", 2)]
    # TR "removes only as many edges as the count of triangles": it is the
    # smallest reducer on the triangle-poor graph (s-pok, T/m < 1); on
    # extremely triangle-dense graphs (s-cds) it can exceed uniform — the
    # paper's "in most cases" qualifier.
    assert reductions[("s-pok", "tr", 0.5)] < reductions[("s-pok", "uniform", 0.5)]
    return rows


def test_fig5_tradeoffs(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_fig5, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS) * sum(len(v) for v in PANELS.values()) * 4
