"""§7.2: BFS critical-edge preservation by spanners.

The paper reports, for s-pok, that removing 21% (k=2), 73% (k=8), 89%
(k=32) and 95% (k=128) of edges preserves 96%, 75%, 57% and 27% of the
critical edges, and that "the accuracy is maintained when different root
vertices are picked and different graphs are selected".

This bench reproduces the sweep on s-pok (plus two more graphs and
multiple roots) and asserts the shape: preservation decreases in k and
stays substantial at k=2.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.spanner import Spanner
from repro.metrics.bfs_quality import critical_edge_preservation

GRAPHS = ["s-pok", "v-ewk", "l-dbl"]
KS = [2, 8, 32, 128]
ROOTS = [0, 17, 101]


def run_bfs_critical(graph_cache, results_dir):
    rows = []
    for gname in GRAPHS:
        g = graph_cache.load(gname)
        for k in KS:
            res = Spanner(k).compress(g, seed=7)
            preserved = [
                critical_edge_preservation(g, res.graph, root) for root in ROOTS
            ]
            rows.append(
                [
                    gname,
                    k,
                    res.edge_reduction,
                    float(np.mean(preserved)),
                    float(np.min(preserved)),
                    float(np.max(preserved)),
                ]
            )
    headers = ["graph", "k", "edges_removed", "critical_mean", "critical_min", "critical_max"]
    text = format_table(
        rows, headers, title="§7.2: spanner BFS critical-edge preservation"
    )
    emit(results_dir, "bfs_critical_edges", text, rows, headers)

    # --- shape assertions ---
    for gname in GRAPHS:
        series = [r for r in rows if r[0] == gname]
        means = [r[3] for r in series]
        # Non-increasing in k (tolerate tiny noise between saturated ks).
        for a, b in zip(means, means[1:]):
            assert b <= a + 0.05, f"{gname}: preservation should decay with k"
        assert means[0] > 0.45, f"{gname}: k=2 should preserve much of Ecr"
        # Removal grows with k.
        reductions = [r[2] for r in series]
        assert reductions[-1] >= reductions[0]
    return rows


def test_bfs_critical_edges(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_bfs_critical, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(GRAPHS) * len(KS)
