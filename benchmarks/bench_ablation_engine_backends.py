"""Ablation: kernel-engine backends (the §3.2 execution-engine design).

DESIGN.md calls out the engine's central choice: kernel instances record
deletion *intents* into per-chunk buffers merged after the sweep, instead
of locking a shared mutable graph.  This ablation quantifies what that
buys and costs:

- serial vs chunked vs multiprocessing execution time for a random edge
  kernel (Python-dispatch bound, so processes only pay off for heavy
  kernels on this box);
- the vectorized fast path vs the kernel program for the same scheme —
  the price of the programming model's flexibility (the paper's §4.7
  lines-of-code argument is about expressiveness, not speed);
- determinism across backends (asserted — the design's core guarantee).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.uniform import RandomUniformKernel, RandomUniformSampling
from repro.core.engine import run_kernels
from repro.core.sg import SG


def run_backend_ablation(graph_cache, results_dir):
    g = graph_cache.load("s-pok")
    rows = []
    masks = {}
    for backend in ("serial", "chunked", "process"):
        best = float("inf")
        for _ in range(3):
            sg = SG(g, {"p": 0.5})
            start = time.perf_counter()
            run_kernels(
                g, RandomUniformKernel(), sg, backend=backend, num_chunks=4, seed=11
            )
            best = min(best, time.perf_counter() - start)
        masks[backend] = sg.buffer.edge_deleted.copy()
        rows.append([f"kernel/{backend}", best, int(sg.buffer.num_deleted_edges)])

    # Vectorized fast path of the same scheme.
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        res = RandomUniformSampling(0.5).compress(g, seed=11)
        best = min(best, time.perf_counter() - start)
    rows.append(["vectorized fast path", best, res.edges_removed])

    headers = ["execution", "seconds", "edges_deleted"]
    text = format_table(rows, headers, title="Ablation: engine backends (s-pok, uniform p=0.5)")
    emit(results_dir, "ablation_engine_backends", text, rows, headers)

    # --- the design guarantees ---
    # chunked and process merge to identical buffers (deterministic merge).
    assert np.array_equal(masks["chunked"], masks["process"])
    # The fast path is orders faster than per-element Python dispatch.
    kernel_serial = rows[0][1]
    fast = rows[-1][1]
    assert fast < kernel_serial, "fast path should beat per-edge dispatch"
    return rows


def test_ablation_engine_backends(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_backend_ablation, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == 4
