"""The abstract's headline claim: 30–70% storage reduction on web crawls.

"we were able to use Slim Graph to compress Web Data Commons 2012, the
largest publicly available graph that we were able to find ..., reducing
its size by 30-70% using distributed compression."

This bench compresses the five Fig. 8 web-crawl stand-ins with the same
distributed uniform-sampling pipeline at the Fig. 8 parameters
(p ∈ {0.4, 0.7} kept ⇒ 60% / 30% removed) and measures *stored bytes*
(not just edge counts) via the storage accounting module, asserting the
30–70% window.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.analytics.storage import storage_report
from repro.distributed.engine import distributed_uniform_sampling

GRAPHS_AND_RANKS = [
    ("h-wdc", 10),
    ("h-deu", 8),
    ("h-duk", 6),
    ("h-clu", 5),
    ("h-dgh", 4),
]


def run_storage(graph_cache, results_dir):
    rows = []
    for gname, ranks in GRAPHS_AND_RANKS:
        g = graph_cache.load(gname)
        for p in (0.4, 0.7):
            res = distributed_uniform_sampling(g, p, num_ranks=ranks, seed=23)
            report = storage_report(res.result)
            rows.append(
                [
                    gname,
                    p,
                    ranks,
                    report.original_bytes,
                    report.compressed_bytes,
                    report.reduction,
                ]
            )
    headers = ["graph", "p_kept", "ranks", "bytes_before", "bytes_after", "reduction"]
    text = format_table(
        rows, headers, title="Abstract claim: 30-70% storage reduction (distributed)"
    )
    emit(results_dir, "storage_reduction", text, rows, headers)

    # --- the 30-70% window of the abstract ---
    for row in rows:
        assert 0.28 <= row[5] <= 0.72, (
            f"{row[0]} p={row[1]}: reduction {row[5]:.2%} outside the 30-70% claim"
        )
    return rows


def test_storage_reduction(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_storage, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == 2 * len(GRAPHS_AND_RANKS)
