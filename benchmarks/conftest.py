"""Shared infrastructure for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (§7).  Conventions:

- experiments run via ``benchmark.pedantic(fn, rounds=1, iterations=1)``
  so ``pytest benchmarks/ --benchmark-only`` executes each experiment
  exactly once and reports its wall time;
- each experiment prints its paper-style table and writes it (plus a CSV)
  under ``benchmarks/results/``;
- graphs are the calibrated stand-ins from :mod:`repro.graphs.datasets`
  (see DESIGN.md for the substitution rationale), cached per session;
- shape assertions (who wins, direction of trends) are inside the
  experiment functions — a bench run that contradicts the paper's
  qualitative findings FAILS, mirroring EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.graphs import datasets

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


class _GraphCache:
    """Session cache so multiple bench files share dataset builds."""

    def __init__(self) -> None:
        self._cache: dict[tuple, object] = {}

    def load(self, name: str, *, seed: int = 0, weighted: bool = False):
        key = (name, seed, weighted)
        if key not in self._cache:
            self._cache[key] = datasets.load(name, seed=seed, weighted=weighted)
        return self._cache[key]


@pytest.fixture(scope="session")
def graph_cache() -> _GraphCache:
    return _GraphCache()


def emit(results_dir: Path, name: str, text: str, rows=None, headers=None) -> None:
    """Print a table and persist it (txt always, csv when rows given)."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text)
    if rows is not None and headers is not None:
        from repro.analytics.report import write_csv

        write_csv(rows, headers, results_dir / f"{name}.csv")
