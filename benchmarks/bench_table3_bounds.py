"""Table 3: empirical verification of every theoretical bound.

Runs the full matrix of (scheme row × property column) from Table 3 on a
triangle-rich evaluation graph, records bound vs observation for each
cell, and fails if any *deterministic* bound breaks (expectation/whp
bounds use the paper's own slack semantics; see repro.theory.bounds).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.algorithms.coloring import coloring_number, greedy_coloring
from repro.algorithms.components import connected_components
from repro.algorithms.independent_set import greedy_mis
from repro.algorithms.matching import maximum_matching_size
from repro.algorithms.paths import pairwise_distance
from repro.algorithms.spectrum import quadratic_form_ratio_bounds
from repro.algorithms.triangles import count_triangles
from repro.analytics.report import format_table
from repro.compress.spanner import Spanner
from repro.compress.spectral import SpectralSparsifier
from repro.compress.summarization import LossySummarization
from repro.compress.triangle_reduction import TriangleReduction
from repro.compress.uniform import RandomUniformSampling
from repro.graphs import generators as gen
from repro.theory import bounds


def run_table3(results_dir):
    g = gen.powerlaw_cluster(500, 6, 0.6, seed=23)
    checks: list[bounds.BoundCheck] = []

    def stats(graph):
        return {
            "m": graph.num_edges,
            "T": count_triangles(graph),
            "dmax": int(graph.degrees.max()),
            "cc": connected_components(graph).num_components,
            "mc": maximum_matching_size(graph),
            "cg": coloring_number(graph),
            "mis": len(greedy_mis(graph)),
            "dist": pairwise_distance(graph, 0, graph.n - 1),
        }

    base = stats(g)

    # --- Simple p-sampling row (p_remove = 0.5).
    keep = 0.5
    sub = RandomUniformSampling(keep).compress(g, seed=1).graph
    s = stats(sub)
    checks += [
        bounds.uniform_edges(base["m"], s["m"], 1 - keep),
        bounds.uniform_components(base["cc"], s["cc"], base["m"], s["m"]),
        bounds.uniform_matching(base["mc"], s["mc"], 1 - keep, slack=1.15),
        bounds.uniform_coloring(base["cg"], s["cg"], 1 - keep),
        bounds.uniform_max_degree(base["dmax"], s["dmax"], 1 - keep),
        bounds.uniform_independent_set(base["mis"], s["mis"], base["m"], s["m"]),
    ]

    # --- Spectral row.
    sub = SpectralSparsifier(0.8).compress(g, seed=2).graph
    s = stats(sub)
    lo, hi = quadratic_form_ratio_bounds(g, sub, num_probes=32, seed=0)
    checks += [
        bounds.spectral_components(base["cc"], s["cc"]),
        bounds.spectral_max_degree(base["dmax"], s["dmax"], 1.0),
        bounds.spectral_quadratic_form(lo, hi, epsilon=0.8),
    ]

    # --- Spanner row.
    for k in (2, 8):
        sub = Spanner(k).compress(g, seed=3).graph
        s = stats(sub)
        checks += [
            bounds.spanner_edges(g.n, s["m"], k),
            bounds.spanner_components(base["cc"], s["cc"]),
            bounds.spanner_triangles(g.n, s["T"], k),
            bounds.spanner_distance_stretch(base["dist"], s["dist"], k),
            bounds.spanner_coloring(
                g.n, greedy_coloring(sub, "degeneracy").num_colors, k
            ),
        ]

    # --- EO p-1-TR row.
    p = 0.8
    sub = TriangleReduction(p, variant="edge_once").compress(g, seed=4).graph
    s = stats(sub)
    checks += [
        bounds.eo_tr_edges(base["m"], s["m"], p, base["T"], base["dmax"], slack=3.0),
        bounds.eo_tr_components(base["cc"], s["cc"]),
        bounds.eo_tr_matching(base["mc"], s["mc"], slack=1.1),
        bounds.eo_tr_coloring(base["cg"], s["cg"]),
        bounds.eo_tr_shortest_path(base["dist"], s["dist"], p, g.n),
        bounds.eo_tr_independent_set(base["mis"], s["mis"], p, base["T"]),
    ]

    # --- ε-summary row.
    eps = 0.3
    res = LossySummarization(eps).compress(g, seed=5)
    checks += [
        bounds.summary_edges(base["m"], res.graph.num_edges, eps),
        bounds.summary_neighborhoods(g, res.graph, eps),
    ]

    rows = [
        [c.name, c.kind, c.bound, c.observed, "PASS" if c.holds else "FAIL"]
        for c in checks
    ]
    headers = ["bound (Table 3 cell)", "kind", "bound", "observed", "status"]
    text = format_table(rows, headers, title="Table 3: bounds verified empirically")
    emit(results_dir, "table3_bounds", text, rows, headers)

    failures = [c for c in checks if not c.holds]
    assert not failures, f"Table 3 bound(s) violated: {[c.name for c in failures]}"
    return rows


def test_table3_bounds(benchmark, results_dir):
    rows = benchmark.pedantic(run_table3, args=(results_dir,), rounds=1, iterations=1)
    assert len(rows) >= 20, "the paper derives 20+ nontrivial bounds"
