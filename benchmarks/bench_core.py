"""Core micro-benchmarks: transforms, the analysis cache, chain pipelines.

The first datapoints of the perf trajectory for the *inner* machinery the
paper-scale sweeps stand on (everything else in ``benchmarks/`` measures
paper experiments end to end):

- **transforms** — the sort-free O(m) ``keep_edges`` fast path against the
  legacy O(m log m) lexsort rebuild (``CSRGraph._keep_edges_rebuild``),
  across graph sizes up to 10^6+ edges, plus ``remove_vertices``;
- **triangle cache** — cold vs. warm ``list_triangles`` through the
  graph-keyed analysis cache, and a multi-seed TR sweep asserted to list
  the original graph's triangles exactly once;
- **chains** — multi-stage ``|`` pipelines whose per-stage cost is now
  O(m), across graph sizes.

Emits ``BENCH_core.json`` through the shared perf-record machinery
(:func:`repro.runner.harness.write_perf_record`), so the record carries
the same schema/naming as the sweep BENCH records and CI can archive it
alongside them.  Shape assertions follow the benchmark conventions: a run
that contradicts the expected qualitative outcome (fast path slower than
the rebuild, a warm cache recomputing) **fails**.

Run::

    PYTHONPATH=src python benchmarks/bench_core.py            # full
    PYTHONPATH=src python benchmarks/bench_core.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import gc
import statistics
import time
from pathlib import Path

import numpy as np

from repro.analytics.session import Session
from repro.compress.registry import build_scheme
from repro.graphs import generators as gen
from repro.graphs.analysis import analysis_cache, stats_delta
from repro.graphs.csr import CSRGraph
from repro.runner.harness import write_perf_record

#: Edge counts exercised by the transform/chain sections.
FULL_SIZES = (100_000, 1_000_000)
SMOKE_SIZES = (5_000, 20_000)

#: The acceptance threshold: fast-path keep_edges on the largest graph.
MIN_KEEP_EDGES_SPEEDUP = 3.0

#: Enabled-tracer overhead budget on the largest transform path: the
#: span() calls left on hot paths must cost <= 2% wall time beyond the
#: A/A (off-vs-off) noise floor measured in the same rounds.
MAX_OBS_OVERHEAD = 1.02

CHAIN_SPEC = "low_degree(max_degree=1) | uniform(p=0.5) | spanner(k=4)"


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _transform_graph(m: int, seed: int = 0) -> CSRGraph:
    return gen.erdos_renyi(max(m // 8, 16), m=m, seed=seed)


def bench_transforms(sizes, repeats: int) -> list[dict]:
    """keep_edges / remove_vertices: fast path vs. legacy rebuild."""
    rows = []
    for m in sizes:
        g = _transform_graph(m)
        rng = np.random.default_rng(7)
        mask = rng.random(g.num_edges) < 0.5
        victims = np.flatnonzero(rng.random(g.n) < 0.1)

        fast = _best_of(lambda: g.keep_edges(mask), repeats)
        legacy = _best_of(lambda: g._keep_edges_rebuild(mask), repeats)
        rv_fast = _best_of(lambda: g.remove_vertices(victims), repeats)

        # Correctness spot check alongside the timing claim.
        a, b = g.keep_edges(mask), g._keep_edges_rebuild(mask)
        assert np.array_equal(a.arc_edge_ids, b.arc_edge_ids)
        assert np.array_equal(a.indptr, b.indptr)

        rows.append(
            {
                "n": g.n,
                "m": g.num_edges,
                "keep_edges_fast_seconds": fast,
                "keep_edges_rebuild_seconds": legacy,
                "keep_edges_speedup": legacy / fast if fast > 0 else float("inf"),
                "remove_vertices_seconds": rv_fast,
            }
        )
        print(
            f"transform m={m:>9,}: fast {fast * 1e3:8.2f} ms   "
            f"rebuild {legacy * 1e3:8.2f} ms   "
            f"speedup {rows[-1]['keep_edges_speedup']:5.2f}x"
        )
    return rows


def bench_triangle_cache(smoke: bool, seeds=(0, 1, 2)) -> dict:
    """Cold vs. warm listing, plus the multi-seed TR sweep guarantee."""
    n = 2_000 if smoke else 20_000
    g = gen.powerlaw_cluster(n, 6, 0.6, seed=1)
    cache = analysis_cache()
    cache.forget(g)  # defensive: a truly cold first listing

    from repro.algorithms.triangles import list_triangles

    start = time.perf_counter()
    tl = list_triangles(g)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    warm_tl = list_triangles(g)
    warm = time.perf_counter() - start
    assert warm_tl is tl, "warm listing must be the cached object"

    before = cache.stats()
    session = Session(g, seed=0)
    for seed in seeds:
        session.grid(["EO-0.6-1-TR"], ["tc"], seed=seed)
    delta = stats_delta(before, cache.stats())
    listing = delta["by_analysis"].get("triangle_list", {"hits": 0, "misses": 0})
    assert listing["misses"] == 0, (
        f"TR sweep re-listed triangles {listing['misses']} times on an "
        "already-warm graph"
    )
    assert listing["hits"] >= len(seeds), delta

    out = {
        "n": g.n,
        "m": g.num_edges,
        "triangles": tl.count,
        "cold_list_seconds": cold,
        "warm_list_seconds": warm,
        "warm_speedup": cold / warm if warm > 0 else float("inf"),
        "tr_sweep_seeds": list(seeds),
        "tr_sweep_analysis": delta,
    }
    print(
        f"triangles n={g.n:,} T={tl.count:,}: cold {cold * 1e3:.2f} ms   "
        f"warm {warm * 1e6:.1f} us   sweep listings: "
        f"{listing['misses']} recomputed / {listing['hits']} reused"
    )
    return out


def bench_chains(sizes, repeats: int) -> list[dict]:
    """Multi-stage pipelines: every stage now pays O(m), not O(m log m)."""
    scheme = build_scheme(CHAIN_SPEC)
    rows = []
    for m in sizes:
        g = _transform_graph(m, seed=3)
        seconds = _best_of(lambda: scheme.compress(g, seed=0), repeats)
        result = scheme.compress(g, seed=0)
        rows.append(
            {
                "n": g.n,
                "m": g.num_edges,
                "spec": CHAIN_SPEC,
                "stages": len(scheme.stages),
                "seconds": seconds,
                "compression_ratio": result.compression_ratio,
            }
        )
        print(
            f"chain m={m:>9,}: {seconds * 1e3:8.2f} ms   "
            f"ratio {result.compression_ratio:.3f}"
        )
    return rows


def bench_obs_overhead(m: int, repeats: int) -> dict:
    """Instrumentation cost: the spanned transform path, tracer off vs on.

    Each round times three back-to-back arms — tracer off, tracer on,
    tracer off again, with the order rotating per round — yielding a
    per-round on/off ratio plus an A/A (off-vs-off) control with
    identical statistics.  Shared-container jitter on this path runs
    several percent per call, larger than the span cost itself, so the
    full run asserts the median on/off ratio stays within
    :data:`MAX_OBS_OVERHEAD` of the median A/A spread: the overhead
    must be invisible beyond the same-config noise floor measured in
    the very same rounds.
    """
    from repro.obs.spans import disable_tracing, enable_tracing, span, tracer

    g = _transform_graph(m, seed=5)
    rng = np.random.default_rng(11)
    mask = rng.random(g.num_edges) < 0.5

    def traced():
        with span("bench.keep_edges", m=g.num_edges):
            g.keep_edges(mask)

    batch = 5

    def sample() -> float:
        # Average a batch per sample: single-call jitter on this path
        # dwarfs the span cost, batching divides it by sqrt(batch).
        start = time.perf_counter()
        for _ in range(batch):
            traced()
        return (time.perf_counter() - start) / batch

    arms = ("off_a", "on", "off_b")
    rounds: list[dict] = []
    disable_tracing()
    tracer().clear()
    traced()  # warmup
    assert len(tracer()) == 0, "disabled tracer must record nothing"
    gc.disable()
    try:
        for i in range(repeats * 3):
            vals = {}
            for arm in arms[i % 3 :] + arms[: i % 3]:
                if arm == "on":
                    enable_tracing()
                else:
                    disable_tracing()
                vals[arm] = sample()
            rounds.append(vals)
    finally:
        gc.enable()
        disable_tracing()
        tracer().clear()
    ratio = statistics.median(
        2 * r["on"] / (r["off_a"] + r["off_b"]) for r in rounds
    )
    aa = statistics.median(
        max(r["off_a"], r["off_b"]) / min(r["off_a"], r["off_b"])
        for r in rounds
    )
    row = {
        "m": g.num_edges,
        "rounds": len(rounds),
        "calls_per_sample": batch,
        "tracer_off_seconds": min(
            min(r["off_a"], r["off_b"]) for r in rounds
        ),
        "tracer_on_seconds": min(r["on"] for r in rounds),
        "overhead_ratio": ratio,
        "aa_noise_ratio": aa,
    }
    print(
        f"obs overhead m={g.num_edges:>9,}: "
        f"off {row['tracer_off_seconds'] * 1e3:8.2f} ms   "
        f"on {row['tracer_on_seconds'] * 1e3:8.2f} ms   "
        f"ratio {ratio:.4f}x   A/A noise {aa:.4f}x"
    )
    return row


def run(smoke: bool, repeats: int, out_dir) -> Path:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    perf = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "transforms": bench_transforms(sizes, repeats),
        "triangle_cache": bench_triangle_cache(smoke),
        "chains": bench_chains(sizes, repeats),
        "obs_overhead": bench_obs_overhead(sizes[-1], max(repeats, 5)),
    }
    largest = perf["transforms"][-1]
    perf["keep_edges_speedup_at_largest"] = largest["keep_edges_speedup"]
    if not smoke:
        assert largest["m"] >= 1_000_000, largest
        assert largest["keep_edges_speedup"] >= MIN_KEEP_EDGES_SPEEDUP, (
            f"fast keep_edges is only {largest['keep_edges_speedup']:.2f}x "
            f"faster than the rebuild at m={largest['m']:,} "
            f"(expected >= {MIN_KEEP_EDGES_SPEEDUP}x)"
        )
        overhead = perf["obs_overhead"]
        assert overhead["m"] >= 1_000_000, overhead
        budget = MAX_OBS_OVERHEAD * overhead["aa_noise_ratio"]
        assert overhead["overhead_ratio"] <= budget, (
            f"enabled tracing costs {overhead['overhead_ratio']:.4f}x on the "
            f"m={overhead['m']:,} transform path (budget {MAX_OBS_OVERHEAD}x "
            f"beyond the {overhead['aa_noise_ratio']:.4f}x A/A noise floor)"
        )
    path = write_perf_record("core", perf, out_dir)
    print(f"wrote {path}")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graphs; skips the >=1e6-edge speedup assertion",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per measurement"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results"),
        help="directory for BENCH_core.json",
    )
    args = parser.parse_args(argv)
    run(smoke=args.smoke, repeats=args.repeats, out_dir=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
