"""Streaming micro-benchmarks: delta application and incremental repair.

The perf claims behind :mod:`repro.stream`, measured and asserted:

- **apply** — :func:`repro.stream.ingest.apply_delta` advancing a CSR
  generation by a small edit batch (masked O(m) delete + searchsorted
  O(m+Δ) insert merge) against a from-scratch ``CSRGraph.from_edges``
  rebuild of the same edited edge set, across graph sizes;
- **incremental** — maintainer repair (:mod:`repro.stream.incremental`)
  against a full batch recompress of the new generation, for the seeded
  spanner and EO triangle reduction, at ~10^5 edges with <= 1% churn per
  batch.  A full (non ``--smoke``) run **fails** unless repair is at
  least ``MIN_INCREMENTAL_SPEEDUP``x faster for every scheme — the
  subsystem's acceptance criterion, recorded in the committed
  ``BENCH_stream.json``.

Emits ``BENCH_stream.json`` through the shared perf-record machinery so
CI archives it next to the sweep BENCH records.

Run::

    PYTHONPATH=src python benchmarks/bench_stream.py            # full
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import gc
import statistics
import time
from pathlib import Path

import numpy as np

from repro.compress.registry import build_scheme
from repro.graphs import generators as gen
from repro.graphs.analysis import analysis_cache
from repro.graphs.csr import CSRGraph
from repro.runner.harness import write_perf_record
from repro.stream.delta import EdgeDelta
from repro.stream.incremental import maintainer_for
from repro.stream.ingest import GraphStream, apply_delta

#: Edge counts exercised by the apply section.
FULL_SIZES = (100_000, 1_000_000)
SMOKE_SIZES = (5_000, 20_000)

#: Vertex counts for the incremental section (powerlaw_cluster(n, 3, .4)
#: yields m ~= 3n edges, so the full size lands at ~10^5 edges).
FULL_INCREMENTAL_N = 34_000
SMOKE_INCREMENTAL_N = 7_000

#: The acceptance threshold: repair vs. full recompress, every scheme.
MIN_INCREMENTAL_SPEEDUP = 5.0

#: Enabled-tracer overhead budget on the largest apply path (same 2%
#: beyond-the-A/A-noise-floor promise ``benchmarks/bench_core.py``
#: makes for the transform path).
MAX_OBS_OVERHEAD = 1.02

#: Churn per batch as a fraction of m (the criterion says <= 1%).
CHURN = 0.01

INCREMENTAL_SPECS = ("spanner(k=4)", "EO-0.8-1-TR")


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _churn_delta(g: CSRGraph, seed: int, ops: int) -> EdgeDelta:
    """Half deletes of existing edges, half inserts of fresh pairs."""
    rng = np.random.default_rng(seed)
    half = ops // 2
    idx = rng.choice(g.num_edges, size=half, replace=False)
    deletes = list(zip(g.edge_src[idx].tolist(), g.edge_dst[idx].tolist()))
    edges = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    edges -= set(deletes)
    inserts: list = []
    while len(inserts) < ops - half:
        u = int(rng.integers(g.n))
        v = int(rng.integers(g.n))
        if u == v:
            continue
        p = (min(u, v), max(u, v))
        if p in edges:
            continue
        edges.add(p)
        inserts.append(p)
    return EdgeDelta.build(inserts=inserts, deletes=deletes)


def bench_apply(sizes, repeats: int) -> list[dict]:
    """apply_delta vs. a from-scratch rebuild of the edited edge set."""
    rows = []
    for m in sizes:
        g = gen.erdos_renyi(max(m // 8, 16), m=m, seed=0)
        ops = max(int(g.num_edges * CHURN), 10)
        delta = _churn_delta(g, seed=1, ops=ops)
        head = apply_delta(g, delta)

        applied = _best_of(lambda: apply_delta(g, delta), repeats)
        rebuilt = _best_of(
            lambda: CSRGraph.from_edges(head.n, head.edge_src, head.edge_dst),
            repeats,
        )
        rows.append(
            {
                "n": g.n,
                "m": g.num_edges,
                "delta_ops": delta.size,
                "apply_seconds": applied,
                "rebuild_seconds": rebuilt,
                "apply_speedup": rebuilt / applied if applied > 0 else float("inf"),
            }
        )
        print(
            f"apply m={m:>9,} ops={delta.size:>6,}: "
            f"apply {applied * 1e3:8.2f} ms   "
            f"rebuild {rebuilt * 1e3:8.2f} ms   "
            f"speedup {rows[-1]['apply_speedup']:5.2f}x"
        )
    return rows


def bench_incremental(n: int, repeats: int, batches: int = 3) -> list[dict]:
    """Maintainer repair vs. full recompress on the same generations."""
    base = gen.powerlaw_cluster(n, 3, 0.4, seed=0)
    ops = int(base.num_edges * CHURN)
    rows = []
    for spec in INCREMENTAL_SPECS:
        stream = GraphStream(base)
        maintainer = maintainer_for(spec, seed=0)
        maintainer.attach(base)
        scheme = build_scheme(spec)
        repair_times, full_times = [], []
        for i in range(batches):
            delta = _churn_delta(stream.head, seed=100 + i, ops=ops)
            head = stream.apply(delta)
            start = time.perf_counter()
            maintainer.update(delta, head)
            repair_times.append(time.perf_counter() - start)

            def cold_compress():
                # A streaming competitor recompresses each *new*
                # generation, so its per-graph analyses (the triangle
                # listing above all) never arrive warm: drop them before
                # every timed run.
                analysis_cache().forget(head)
                scheme.compress(head, seed=0)

            full_times.append(_best_of(cold_compress, repeats))
        assert maintainer.stats["full_rebuilds"] == 0, (
            f"{spec}: churn {CHURN:.0%} unexpectedly hit the rebuild "
            f"fallback ({maintainer.stats})"
        )
        repair = min(repair_times)
        full = min(full_times)
        rows.append(
            {
                "spec": spec,
                "n": base.n,
                "m": base.num_edges,
                "churn": CHURN,
                "delta_ops": ops,
                "batches": batches,
                "repair_seconds": repair,
                "full_recompress_seconds": full,
                "speedup": full / repair if repair > 0 else float("inf"),
                "stats": dict(maintainer.stats),
            }
        )
        print(
            f"incremental {spec:<14} m={base.num_edges:>8,}: "
            f"repair {repair * 1e3:8.2f} ms   "
            f"full {full * 1e3:8.2f} ms   "
            f"speedup {rows[-1]['speedup']:5.2f}x"
        )
    return rows


def bench_obs_overhead(m: int, repeats: int) -> dict:
    """Instrumentation cost on delta application, tracer off vs on.

    Rounds of three back-to-back arms — off, on, off again, order
    rotating — yield per-round on/off ratios plus an A/A (off-vs-off)
    control with identical statistics; shared-container jitter on this
    path runs several percent per call, so the full run asserts the
    median on/off ratio against :data:`MAX_OBS_OVERHEAD` *beyond* the
    median A/A spread measured in the same rounds.
    """
    from repro.obs.spans import disable_tracing, enable_tracing, span, tracer

    g = gen.erdos_renyi(max(m // 8, 16), m=m, seed=5)
    ops = max(int(g.num_edges * CHURN), 10)
    delta = _churn_delta(g, seed=9, ops=ops)

    def traced():
        with span("bench.apply", ops=delta.size):
            apply_delta(g, delta)

    def sample() -> float:
        start = time.perf_counter()
        traced()
        return time.perf_counter() - start

    arms = ("off_a", "on", "off_b")
    rounds: list[dict] = []
    disable_tracing()
    tracer().clear()
    traced()  # warmup
    gc.disable()
    try:
        for i in range(repeats * 3):
            vals = {}
            for arm in arms[i % 3 :] + arms[: i % 3]:
                if arm == "on":
                    enable_tracing()
                else:
                    disable_tracing()
                vals[arm] = sample()
            rounds.append(vals)
    finally:
        gc.enable()
        disable_tracing()
        tracer().clear()
    ratio = statistics.median(
        2 * r["on"] / (r["off_a"] + r["off_b"]) for r in rounds
    )
    aa = statistics.median(
        max(r["off_a"], r["off_b"]) / min(r["off_a"], r["off_b"])
        for r in rounds
    )
    row = {
        "m": g.num_edges,
        "delta_ops": delta.size,
        "rounds": len(rounds),
        "tracer_off_seconds": min(
            min(r["off_a"], r["off_b"]) for r in rounds
        ),
        "tracer_on_seconds": min(r["on"] for r in rounds),
        "overhead_ratio": ratio,
        "aa_noise_ratio": aa,
    }
    print(
        f"obs overhead m={g.num_edges:>9,} ops={delta.size:>6,}: "
        f"off {row['tracer_off_seconds'] * 1e3:8.2f} ms   "
        f"on {row['tracer_on_seconds'] * 1e3:8.2f} ms   "
        f"ratio {ratio:.4f}x   A/A noise {aa:.4f}x"
    )
    return row


def run(smoke: bool, repeats: int, out_dir) -> Path:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    inc_n = SMOKE_INCREMENTAL_N if smoke else FULL_INCREMENTAL_N
    perf = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "apply": bench_apply(sizes, repeats),
        "incremental": bench_incremental(inc_n, repeats),
        "obs_overhead": bench_obs_overhead(sizes[-1], max(repeats, 5)),
    }
    perf["incremental_speedups"] = {
        row["spec"]: row["speedup"] for row in perf["incremental"]
    }
    if not smoke:
        for row in perf["incremental"]:
            assert row["m"] >= 100_000, row
            assert row["speedup"] >= MIN_INCREMENTAL_SPEEDUP, (
                f"{row['spec']}: repair is only {row['speedup']:.2f}x faster "
                f"than a full recompress at m={row['m']:,} with "
                f"{row['churn']:.0%} churn (expected >= "
                f"{MIN_INCREMENTAL_SPEEDUP}x)"
            )
        overhead = perf["obs_overhead"]
        assert overhead["m"] >= 1_000_000, overhead
        budget = MAX_OBS_OVERHEAD * overhead["aa_noise_ratio"]
        assert overhead["overhead_ratio"] <= budget, (
            f"enabled tracing costs {overhead['overhead_ratio']:.4f}x on the "
            f"m={overhead['m']:,} apply path (budget {MAX_OBS_OVERHEAD}x "
            f"beyond the {overhead['aa_noise_ratio']:.4f}x A/A noise floor)"
        )
    path = write_perf_record("stream", perf, out_dir)
    print(f"wrote {path}")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized graphs; skips the >=1e5-edge speedup assertion",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per measurement"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results"),
        help="directory for BENCH_stream.json",
    )
    args = parser.parse_args(argv)
    run(smoke=args.smoke, repeats=args.repeats, out_dir=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
