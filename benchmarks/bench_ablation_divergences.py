"""Ablation: the divergence-selection study behind §5.

The paper "analyzed various divergences to understand which one is best
suited" and picked Kullback–Leibler.  This ablation reruns the comparison:
for a sweep of compression strengths, compute KL, JS, Hellinger, TV and
Bhattacharyya between original and compressed PageRank distributions, and
check the properties the selection argued from:

- every divergence is 0 at the identity and grows monotonically with
  compression strength (all are usable);
- KL is unbounded/asymmetric (sensitivity at strong compression keeps
  growing where JS/TV saturate toward their caps) — the resolution
  argument for picking it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.algorithms.pagerank import pagerank
from repro.analytics.report import format_table
from repro.compress.uniform import RandomUniformSampling
from repro.metrics.divergences import all_divergences

KEEPS = [1.0, 0.8, 0.5, 0.2, 0.05]


def run_divergence_ablation(graph_cache, results_dir):
    g = graph_cache.load("v-skt")
    pr0 = pagerank(g).ranks
    rows = []
    series: dict[str, list[float]] = {}
    for keep in KEEPS:
        sub = RandomUniformSampling(keep).compress(g, seed=17).graph
        div = all_divergences(pr0, pagerank(sub).ranks)
        rows.append([keep] + [div[k] for k in ("kl", "js", "hellinger", "total_variation", "bhattacharyya")])
        for k, v in div.items():
            series.setdefault(k, []).append(v)
    headers = ["kept", "KL", "JS", "Hellinger", "TV", "Bhattacharyya"]
    text = format_table(rows, headers, title="Ablation: divergence selection (§5)")
    emit(results_dir, "ablation_divergences", text, rows, headers)

    # --- selection-study shapes ---
    for name, values in series.items():
        assert values[0] < 1e-6, f"{name}: identity must be ~0"
        # Monotone growth with compression strength (small tolerance).
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-3, f"{name}: should grow with compression"
    # KL keeps resolving at strong compression relative to its own scale
    # better than the bounded TV (which saturates toward 1).
    kl, tv = series["kl"], series["total_variation"]
    kl_growth = kl[-1] / max(kl[-2], 1e-12)
    tv_growth = tv[-1] / max(tv[-2], 1e-12)
    assert kl_growth >= tv_growth, "KL should keep resolving where TV saturates"
    return rows


def test_ablation_divergences(benchmark, graph_cache, results_dir):
    rows = benchmark.pedantic(
        run_divergence_ablation, args=(graph_cache, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == len(KEEPS)
