"""§7.4: relative cost of the compression routines themselves.

The paper's ordering: sampling is the fastest; spectral is "negligibly
slower" (reads endpoint degrees); spanners are >20% slower than the edge
kernels (low-diameter decomposition constants); TR is >50% slower than
spanners (O(m^{3/2}) triangle listing); summarization is >200% slower
than TR (iterations + complex design).

These use plain ``benchmark()`` (multiple rounds) so pytest-benchmark's
own statistics table doubles as the §7.4 artifact, plus one pedantic run
asserting the ordering.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.analytics.report import format_table
from repro.compress.registry import make_scheme

GRAPH = "v-ewk"


@pytest.fixture(scope="module")
def graph(graph_cache):
    return graph_cache.load(GRAPH)


def test_time_uniform(benchmark, graph):
    scheme = make_scheme("uniform(p=0.5)")
    benchmark(lambda: scheme.compress(graph, seed=0))


def test_time_spectral(benchmark, graph):
    scheme = make_scheme("spectral(p=0.5)")
    benchmark(lambda: scheme.compress(graph, seed=0))


def test_time_spanner(benchmark, graph):
    scheme = make_scheme("spanner(k=8)")
    benchmark(lambda: scheme.compress(graph, seed=0))


def test_time_triangle_reduction(benchmark, graph):
    scheme = make_scheme("0.5-1-TR")
    benchmark(lambda: scheme.compress(graph, seed=0))


def test_time_summarization(benchmark, graph):
    scheme = make_scheme("summarization(epsilon=0.3)")
    benchmark(lambda: scheme.compress(graph, seed=0))


def run_ordering(graph, results_dir):
    timings = {}
    for label, spec in [
        ("uniform", "uniform(p=0.5)"),
        ("spectral", "spectral(p=0.5)"),
        ("spanner", "spanner(k=8)"),
        ("tr", "0.5-1-TR"),
        ("summarization", "summarization(epsilon=0.3)"),
    ]:
        scheme = make_scheme(spec)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            scheme.compress(graph, seed=0)
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    rows = [[k, v, v / timings["uniform"]] for k, v in timings.items()]
    headers = ["scheme", "seconds", "x uniform"]
    text = format_table(rows, headers, title=f"§7.4 compression time on {GRAPH}")
    emit(results_dir, "compression_time", text, rows, headers)

    # --- shape: the paper's cost ordering ---
    assert timings["uniform"] <= timings["spectral"] * 1.5
    assert timings["spanner"] > timings["uniform"]
    assert timings["tr"] > timings["uniform"]
    assert timings["summarization"] > timings["tr"]
    return rows


def test_compression_time_ordering(benchmark, graph, results_dir):
    rows = benchmark.pedantic(
        run_ordering, args=(graph, results_dir), rounds=1, iterations=1
    )
    assert len(rows) == 5
