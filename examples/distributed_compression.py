#!/usr/bin/env python
"""Distributed lossy compression — the §7.3 / Fig. 8 pipeline.

The paper compressed the 128-billion-edge Web Data Commons crawl on 100
Cray nodes with MPI-RMA edge kernels.  This example runs the simulated
pipeline on the scaled-down stand-in: the graph's canonical edges are
partitioned across ranks, every rank executes the uniform-sampling edge
kernel over its partition, and the per-rank keep masks land in a shared
RMA window.

Two properties worth seeing with your own eyes:

- the result is bit-identical for any rank count and for the real
  multi-process backend (determinism by construction — a global coin
  sequence sliced per rank);
- sampling "removes the clutter" from the degree distribution (Fig. 8's
  observation), which we quantify as the number of distinct points in the
  (degree, fraction) cloud.

Run:  python examples/distributed_compression.py
"""

import numpy as np

from repro import datasets
from repro.distributed import distributed_uniform_sampling
from repro.metrics.distributions import degree_histogram


def main() -> None:
    crawl = datasets.load("h-duk", seed=0)  # directed web-crawl stand-in
    print(f"web crawl: {crawl}")
    print(f"paper original: n=787M, m=47.6B (scaled-down stand-in)\n")

    p = 0.4
    runs = {
        "1 rank (inprocess)": distributed_uniform_sampling(
            crawl, p, num_ranks=1, seed=7
        ),
        "6 ranks (inprocess)": distributed_uniform_sampling(
            crawl, p, num_ranks=6, seed=7
        ),
        "4 ranks (processes)": distributed_uniform_sampling(
            crawl, p, num_ranks=4, seed=7, backend="process"
        ),
    }

    graphs = [r.result.graph for r in runs.values()]
    for label, run in runs.items():
        g = run.result.graph
        print(
            f"{label:22s} m={g.num_edges:8d}"
            f"  per-rank deletions={list(run.deleted_per_rank)}"
        )
    identical = all(
        np.array_equal(graphs[0].edge_src, g.edge_src) for g in graphs[1:]
    )
    print(f"\nall runs bit-identical : {identical}")

    pts0 = len(degree_histogram(crawl)[0])
    pts1 = len(degree_histogram(graphs[0])[0])
    print(f"degree-cloud points    : {pts0} -> {pts1} (clutter removed, Fig. 8)")


if __name__ == "__main__":
    main()
