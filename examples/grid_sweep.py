#!/usr/bin/env python
"""Grid sweeps: the full scheme × algorithm × metric cube in one call.

The paper's evaluation is a grid — every compression scheme crossed with
every algorithm, each output scored with the metric its type calls for
(§5).  ``Session.grid`` runs that cube directly from declarative specs:

1. name schemes the usual way (spec strings, TR labels, pipelines);
2. name algorithms from the open registry — the paper's table labels
   (``pr``, ``cc``, ``tc``, ``bfs``) or parameterized specs like
   ``"sssp(source=0)"`` and ``"pagerank(iterations=50)"``;
3. optionally name metrics; by default each algorithm's *result adapter*
   (distribution / scalar / ordering / vertex set / traversal) picks the
   §5 default — KL divergence, relative change, reordered pairs, …

Every original-graph baseline runs exactly once for the whole grid, and
the result is a tidy long-format ``SweepTable`` that round-trips through
``to_dict`` (JSON) and ``to_csv`` (files).

Run:  python examples/grid_sweep.py
"""

from repro import Session, SweepTable
from repro.graphs import generators


def main() -> None:
    # A tiny triangle-rich graph so the whole cube runs in seconds.
    graph = generators.powerlaw_cluster(300, 4, 0.6, seed=7)
    print(f"graph    : {graph}")

    session = Session(graph, seed=1)
    table = session.grid(
        schemes=[
            "uniform(p=0.5)",
            "spectral(p=0.5)",
            "EO-0.8-1-TR",
            "spanner(k=8)",
        ],
        algorithms=["bfs", "pr", "cc", "tc", "sssp", "mis"],
    )

    print(table.to_table(title="scheme x algorithm x metric grid"))
    print(
        f"{len(table)} cells over {len(table.schemes())} schemes; "
        f"{session.baseline_computations} original-graph baseline "
        f"executions in total (one per algorithm, reused across the grid)."
    )

    # The table is a value: JSON and CSV round-trip losslessly.
    assert SweepTable.from_dict(table.to_dict()) == table
    assert SweepTable.from_csv(table.to_csv()) == table

    # Slice it relationally: which scheme preserves PageRank best?
    kl = table.filter(metric="kl_divergence")
    best = min(kl, key=lambda cell: cell.value)
    print(f"\nbest PageRank preservation: {best.scheme} (KL = {best.value:.4f})")

    # Metrics can be named explicitly; they fan out over the algorithms
    # whose result adapter supports them.
    divergences = session.grid(
        ["uniform(p=0.5)", "spanner(k=8)"],
        ["pr"],
        ["kl", "js", "hellinger", "total_variation"],
    )
    for cell in divergences:
        print(f"  {cell.scheme:16s} {cell.metric:16s} {cell.value:.4f}")


if __name__ == "__main__":
    main()
