#!/usr/bin/env python
"""Persistent, parallel, resumable sweeps with the runner subsystem.

The paper's evaluation grids get expensive fast: scheme configurations ×
algorithms × metrics × seeds, per graph.  The runner makes them cheap to
repeat:

1. ``Session(graph, store=..., jobs=N)`` — the same fluent ``grid`` API,
   but every (scheme, seed, algorithm) cell is keyed by *content* (graph
   fingerprint + canonical spec JSON + seed) in an on-disk artifact
   store, and cells fan out over N worker processes;
2. a re-run against a warm store replays every cell with **zero
   recomputation** — interrupt a sweep, run it again, it resumes;
3. the named-sweep harness (``python -m repro.runner table5 --store …``)
   wraps the same machinery for the paper's experiments and emits
   ``BENCH_*.json`` perf records.

Run:  python examples/parallel_sweep.py
"""

import tempfile
from pathlib import Path

from repro import ArtifactStore, Session
from repro.graphs import generators

SCHEMES = ["uniform(p=0.5)", "spectral(p=0.5)", "EO-0.8-1-TR", "spanner(k=8)"]
ALGORITHMS = ["pr", "cc", "tc"]
SEEDS = [0, 1, 2]


def main() -> None:
    graph = generators.powerlaw_cluster(400, 4, 0.6, seed=7)
    store_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-")) / "store"
    print(f"graph : {graph}")
    print(f"store : {store_dir}")

    # --- cold run: every cell computed, fanned over 2 worker processes --
    session = Session(graph, store=ArtifactStore(store_dir), jobs=2)
    tables = [
        session.grid(SCHEMES, ALGORITHMS, seed=seed) for seed in SEEDS
    ]
    cells = sum(len(t) for t in tables)
    stats = session.store.stats
    print(
        f"cold  : {cells} cells over {len(SEEDS)} seeds computed in "
        f"parallel ({stats.misses} store misses, {stats.writes} writes)"
    )

    # --- warm run: a fresh session replays everything from the store ----
    # This is what resumability means: kill the process mid-sweep and run
    # it again — completed cells are never recomputed.
    resumed = Session(graph, store=ArtifactStore(store_dir), jobs=2)
    retables = [resumed.grid(SCHEMES, ALGORITHMS, seed=seed) for seed in SEEDS]
    stats = resumed.store.stats
    print(
        f"warm  : {stats.hits} cache hits, {stats.misses} misses, "
        f"{resumed.baseline_computations} baselines recomputed"
    )
    assert stats.misses == 0 and resumed.baseline_computations == 0
    # Replayed results are identical, down to the recorded seed per cell.
    for fresh, replayed in zip(tables, retables):
        assert fresh.pivot() == replayed.pivot()
        assert [c.seed for c in fresh] == [c.seed for c in replayed]

    # Multi-seed results are one concatenated table away from analysis.
    from repro import SweepTable

    table = SweepTable([c for t in retables for c in t])
    kl = table.filter(metric="kl_divergence")
    print("\nPageRank KL by scheme (3 seeds each):")
    for scheme in kl.schemes():
        vals = [c.value for c in kl.filter(scheme=scheme)]
        print(f"  {scheme:45s} mean={sum(vals) / len(vals):.5f}")

    # Paste-ready markdown with round-trip-safe floats:
    print("\n" + kl.filter(seed=0).to_markdown(
        title="seed-0 KL cells", columns=["scheme", "value", "compression_ratio"]
    ))
    print("Named sweeps do the same from the CLI:")
    print("  python -m repro.runner smoke --store .sweep-store --jobs 2")


if __name__ == "__main__":
    main()
