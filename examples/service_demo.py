#!/usr/bin/env python
"""Compression-as-a-service: the HTTP job API in one self-contained demo.

The service layer turns the Session/runner machinery into a long-running
process any client can talk to:

1. ``JobQueue`` — a deduplicating async queue over a shared artifact
   store: identical in-flight submissions coalesce onto one computation,
   and re-submissions after completion replay from the warm store;
2. a stdlib-only HTTP JSON API (``POST /jobs``, ``GET /jobs/<id>``,
   ``GET /jobs/<id>/result``, ``GET /metrics``) plus a server-rendered
   admin dashboard at ``/``;
3. the same job identity everywhere: the CLI harness, the process pool,
   and HTTP clients all hash the canonical ``JobSpec`` JSON, so a sweep
   started from any transport warms the next.

This demo boots the server in-process on a free port, plays a client
over ``urllib``, and shows dedupe + warm replay in the ``/metrics``
counters.  The standalone form is::

    python -m repro.service --store .service-store --jobs 2 --port 8765

Run:  python examples/service_demo.py
"""

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.service import JobQueue
from repro.service.http import start_in_thread

JOB = {
    "graph": "s-flx",
    "schemes": ["uniform(p=0.5)", "spanner(k=4)", "EO-0.8-1-TR"],
    "algorithms": ["pr", "cc"],
    "seeds": [0],
}


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return json.loads(resp.read())


def post_job(base: str, body: dict) -> dict:
    request = urllib.request.Request(base + "/jobs", data=json.dumps(body).encode())
    with urllib.request.urlopen(request, timeout=60) as resp:
        return json.loads(resp.read())


def wait_for(base: str, job_id: str) -> dict:
    while True:
        summary = get(base, f"/jobs/{job_id}")
        if summary["state"] in ("done", "failed"):
            return summary
        time.sleep(0.05)


def main() -> None:
    store = Path(tempfile.mkdtemp(prefix="repro-service-")) / "store"
    queue = JobQueue(store, workers=2)
    server, thread = start_in_thread(queue)
    base = "http://{}:{}".format(*server.server_address[:2])
    print(f"service : {base} (store: {store})")
    print(f"health  : {get(base, '/healthz')['status']}")

    try:
        # --- submit one job, and the same job again while it runs -------
        # The second submission coalesces onto the first: same job id,
        # one computation.  A different grid gets its own job.
        first = post_job(base, JOB)
        dup = post_job(base, JOB)
        other = post_job(base, dict(JOB, seeds=[1]))
        assert dup["id"] == first["id"] != other["id"]
        print(f"submit  : {first['id']} (duplicate coalesced), {other['id']}")

        done = wait_for(base, first["id"])
        wait_for(base, other["id"])
        print(f"done    : {done['id']} in {done['seconds']:.2f}s")

        # --- fetch the finished table -----------------------------------
        result = get(base, f"/jobs/{first['id']}/result")
        print(f"cells   : {len(result['cells'])} "
              f"({result['perf']['cache_misses']} computed)")
        for cell in result["cells"][:4]:
            print(f"  {cell['scheme']:14s} {cell['algorithm']:10s} "
                  f"{cell['metric']:22s} {cell['value']:.5f}")

        # --- warm resubmit: zero recomputation --------------------------
        warm = wait_for(base, post_job(base, JOB)["id"])
        metrics = get(base, "/metrics")
        print(f"warm    : {warm['id']} replayed from the store "
              f"(warm={warm['warm']}, coalesced submissions: "
              f"{metrics['coalesced']})")
        print(f"store   : {metrics['store']['hits']} hits / "
              f"{metrics['store']['misses']} misses / "
              f"{metrics['store']['writes']} writes")
        assert warm["warm"] is True

        print(f"\nadmin dashboard (HTML): {base}/")
    finally:
        server.shutdown()
        thread.join()
        queue.close()
    print("stopped : queue drained, workers joined")


if __name__ == "__main__":
    main()
