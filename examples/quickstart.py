#!/usr/bin/env python
"""Quickstart: compress a graph, run an algorithm, measure the accuracy.

The 60-second tour of the Slim Graph pipeline (§3), written against the
fluent :class:`repro.Session` API:

1. load a graph (a synthetic stand-in for the paper's Pokec snapshot),
2. stage 1 — compress it with a scheme named by its declarative spec,
3. stage 2 — run PageRank on original and compressed graphs (the
   session runs the original exactly once, no matter how many schemes
   we try),
4. analytics — quantify the information loss with the KL divergence,
   and the storage saving with the compression ratio.

Run:  python examples/quickstart.py
"""

from repro import Session, datasets, pagerank


def main() -> None:
    graph = datasets.load("s-pok", seed=0)
    print(f"loaded  : {graph}")

    session = Session(graph, seed=1)

    # Try a few schemes from the paper's Table 2 at comparable budgets —
    # named form, paper-style TR label, and a composed `|` pipeline.
    for spec in [
        "uniform(p=0.5)",
        "spectral(p=0.5)",
        "EO-0.8-1-TR",
        "spanner(k=8)",
        "low_degree(max_degree=1) | spanner(k=8)",
    ]:
        run = session.compress(spec)
        scores = run.run(pagerank).score(["kl"])

        print(
            f"{spec:42s} kept {run.compression_ratio:6.1%} of edges"
            f"  ->  PageRank KL divergence {scores['kl_divergence']:.4f}"
        )

    print(
        f"\nThe session cached the original PageRank run: "
        f"{session.baseline_computations} baseline execution(s) for 5 schemes."
    )
    print(
        "Lower KL = closer to the original ranking;"
        " smaller ratio = more storage saved (Table 5's tradeoff)."
    )


if __name__ == "__main__":
    main()
