#!/usr/bin/env python
"""Quickstart: compress a graph, run an algorithm, measure the accuracy.

The 60-second tour of the Slim Graph pipeline (§3):

1. load a graph (a synthetic stand-in for the paper's Pokec snapshot),
2. stage 1 — compress it with a scheme picked from the registry,
3. stage 2 — run PageRank on original and compressed graphs,
4. analytics — quantify the information loss with the KL divergence,
   and the storage saving with the compression ratio.

Run:  python examples/quickstart.py
"""

from repro import datasets, kl_divergence, make_scheme, pagerank

def main() -> None:
    graph = datasets.load("s-pok", seed=0)
    print(f"loaded  : {graph}")

    # Try a few schemes from the paper's Table 2 at comparable budgets.
    for spec in ["uniform(p=0.5)", "spectral(p=0.5)", "EO-0.8-1-TR", "spanner(k=8)"]:
        scheme = make_scheme(spec)
        result = scheme.compress(graph, seed=1)

        pr_original = pagerank(graph).ranks
        pr_compressed = pagerank(result.graph).ranks
        kl = kl_divergence(pr_original, pr_compressed)

        print(
            f"{spec:18s} kept {result.compression_ratio:6.1%} of edges"
            f"  ->  PageRank KL divergence {kl:.4f}"
        )

    print(
        "\nLower KL = closer to the original ranking;"
        " smaller ratio = more storage saved (Table 5's tradeoff)."
    )


if __name__ == "__main__":
    main()
