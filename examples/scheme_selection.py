#!/usr/bin/env python
"""Choosing a compression scheme — §7.5's guidelines as a library call.

The paper closes its evaluation with a recipe: (1) pick the scheme Table 3
ranks best for the property you must preserve, (2) check feasibility for
your graph, (3) tune parameters with the Fig. 5 sweeps.  The
``repro.analytics.recommend`` API encodes steps 1–2; this example walks
all three for two very different inputs — a weighted road network and a
triangle-rich social graph — and verifies the recommendation actually
delivers on its promise.

Run:  python examples/scheme_selection.py
"""

from repro import Session, datasets, make_scheme
from repro.analytics import recommend
from repro.analytics.evaluation import AlgorithmSpec


def pick_and_verify(graph, graph_label, preserve, measure) -> None:
    """Apply the top feasible recommendation and report its accuracy.

    ``measure(original, compressed) -> (description, value)``; exact
    schemes report 0 error, approximate fallbacks report how far off they
    landed — the honest version of Table 3's exact-vs-bounded columns.
    """
    print(f"--- preserve {preserve!r} on {graph_label} ---")
    recs = recommend(preserve, graph)
    for rec in recs:
        flag = "OK " if rec.feasible else "NO "
        note = rec.caveat or rec.rationale
        print(f"  [{flag}] {rec.scheme_spec:34s} {note[:60]}")
    best = next(r for r in recs if r.feasible)
    scheme = make_scheme(best.scheme_spec)
    result = scheme.compress(graph, seed=0)
    label, value = measure(graph, result.graph)
    print(
        f"  -> applied {best.scheme_spec}: kept {result.compression_ratio:.1%} "
        f"of edges; {label}: {value}\n"
    )


def main() -> None:
    road = datasets.load("v-usa", seed=0)
    social = datasets.load("s-cds", seed=0)

    # Step 1+2 on two property/graph pairs.
    from repro.algorithms import connected_components, minimum_spanning_forest

    def mst_error(g, h):
        w0 = minimum_spanning_forest(g).total_weight
        w1 = minimum_spanning_forest(h).total_weight
        return "MST weight drift", f"{abs(w1 - w0) / w0:.2%} (exact scheme infeasible: no triangles)"

    def cc_exact(g, h):
        same = (
            connected_components(g).num_components
            == connected_components(h).num_components
        )
        return "#CC preserved exactly", same

    pick_and_verify(road, "v-usa (weighted road network)", "mst_weight", mst_error)
    pick_and_verify(social, "s-cds (triangle-dense social)", "connected_components", cc_exact)

    # Step 3: tune the parameter with a sweep (Fig. 5 methodology).  A
    # session sweep takes spec strings directly and reuses the baseline
    # algorithm runs across all three parameter values.
    print("--- step 3: parameter sweep for spanner storage on s-cds ---")
    rows = Session(social, seed=0).sweep(
        [f"spanner(k={k})" for k in (2, 8, 32)],
        algorithms=[AlgorithmSpec("m", lambda g: g.num_edges, "scalar")],
    )
    for row in rows:
        print(
            f"  k={int(row.parameter):3d}: kept {row.compression_ratio:6.1%} of edges"
        )


if __name__ == "__main__":
    main()
