#!/usr/bin/env python
"""Writing your own compression kernel — the §4 programming model.

The whole point of Slim Graph is that a new lossy compression scheme is a
*small program*, not a new system.  This example implements a scheme that
does not ship with the library:

    "weak-tie sampling": delete an edge with probability p only when its
    endpoints share no common neighbor (an open triangle / weak tie in
    the Granovetter sense), so all community-internal edges survive.

It needs ~10 lines: an EdgeKernel subclass.  The engine gives every kernel
instance a local view (the edge + endpoint degrees/neighborhoods) and the
shared SG container for parameters, RNG, and deletion intents — exactly
Listing 1's shape.  We then run it through the standard runtime and
analytics, like any built-in scheme.

Run:  python examples/custom_compression_kernel.py
"""

import numpy as np

from repro import SG, datasets, run_kernels
from repro.algorithms import connected_components, count_triangles
from repro.core.kernels import EdgeKernel


class WeakTieSampling(EdgeKernel):
    """Delete weak ties (edges closing no triangle) with probability p."""

    name = "weak_tie_sampling"

    def __call__(self, e, sg) -> None:
        g = sg.graph
        u, v = e.u.id, e.v.id
        # Local view: sorted neighbor rows -> one intersection test.
        common = np.intersect1d(g.neighbors(u), g.neighbors(v), assume_unique=True)
        if len(common) == 0 and sg.rand() < sg.p:
            sg.delete(e)


def main() -> None:
    graph = datasets.load("l-dbl", seed=0)  # collaboration graph: cliques + ties
    print(f"input: {graph}, triangles={count_triangles(graph)}")

    sg = SG(graph, {"p": 0.9}, seed=1)
    sweep = run_kernels(graph, WeakTieSampling(), sg, backend="chunked", seed=1)
    compressed = sg.buffer.apply(graph)

    print(f"kernel instances run : {sweep.num_instances}")
    print(f"weak ties deleted    : {sweep.num_deleted_edges} "
          f"({sweep.num_deleted_edges / graph.num_edges:.1%} of edges)")

    # The invariant our kernel was designed for: every triangle is intact.
    assert count_triangles(compressed) == count_triangles(graph)
    print("triangle count       : preserved exactly (by construction)")

    cc0 = connected_components(graph).num_components
    cc1 = connected_components(compressed).num_components
    print(f"connected components : {cc0} -> {cc1} "
          "(weak ties were bridges: expect some splits)")


if __name__ == "__main__":
    main()
