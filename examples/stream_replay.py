#!/usr/bin/env python
"""Streaming replay: edge deltas, CSR generations, incremental repair.

The evolving-graph tour of :mod:`repro.stream`:

1. start from a synthetic social-network snapshot,
2. synthesize a few churn batches (inserts + deletes), write them to the
   line-oriented stream format, and read them back — the on-disk replay
   loop a subscription service would run,
3. advance a :class:`GraphStream` generation by generation while two
   incremental maintainers (the §4.5.3 spanner and EO triangle
   reduction) repair their compressed outputs in the delta-touched
   neighborhood instead of recompressing,
4. cross-check one maintainer against a from-scratch batch recompress of
   the final head, and print the fingerprint-linked generation ledger.

Run:  python examples/stream_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.compress.registry import build_scheme
from repro.graphs import generators as gen
from repro.stream import EdgeDelta, GraphStream, maintainer_for, read_stream, write_stream

BATCHES = 4
CHURN_OPS = 24
SPECS = ("spanner(k=4)", "EO-0.8-1-TR")


def churn_delta(g, seed: int, ops: int) -> EdgeDelta:
    """Half deletes of existing edges, half inserts of fresh pairs."""
    rng = np.random.default_rng(seed)
    half = ops // 2
    idx = rng.choice(g.num_edges, size=half, replace=False)
    deletes = list(zip(g.edge_src[idx].tolist(), g.edge_dst[idx].tolist()))
    present = set(zip(g.edge_src.tolist(), g.edge_dst.tolist())) - set(deletes)
    inserts = []
    while len(inserts) < ops - half:
        u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
        pair = (min(u, v), max(u, v))
        if u != v and pair not in present:
            present.add(pair)
            inserts.append(pair)
    return EdgeDelta.build(inserts=inserts, deletes=deletes)


def main() -> None:
    base = gen.powerlaw_cluster(400, 3, 0.4, seed=0)
    print(f"base generation: {base}")

    # Synthesize the stream, round-trip it through the text format.
    stream = GraphStream(base)
    deltas, head = [], base
    for i in range(BATCHES):
        delta = churn_delta(head, seed=10 + i, ops=CHURN_OPS)
        deltas.append(delta)
        head = stream.apply(delta)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "social.stream"
        write_stream(deltas, path)
        replayed = read_stream(path)
    assert [d.delta_id for d in replayed] == [d.delta_id for d in deltas]
    print(f"stream file round-trips: {len(replayed)} batches, ids preserved\n")

    # Replay against fresh maintainers, one repair per generation.
    stream = GraphStream(base)
    maintainers = {spec: maintainer_for(spec, seed=0) for spec in SPECS}
    for m in maintainers.values():
        m.attach(base)
    for gen_id, delta in enumerate(replayed, start=1):
        g = stream.apply(delta)
        cells = []
        for spec, m in maintainers.items():
            m.update(delta, g)
            cells.append(f"{spec}→{m.compressed.num_edges:>5} edges")
        print(
            f"gen {gen_id}: n={g.n} m={g.num_edges} "
            f"(+{delta.num_inserts} -{delta.num_deletes})   " + "   ".join(cells)
        )

    # Every generation was repaired, never rebuilt ...
    for spec, m in maintainers.items():
        stats = m.stats
        assert stats["full_rebuilds"] == 0, (spec, stats)
        print(f"\n{spec}: {stats['repairs']} repairs, {stats['full_rebuilds']} rebuilds")

    # ... and the maintained EO-TR output matches a from-scratch batch
    # recompress of the final head (same seed, same RNG discipline is not
    # promised across histories — compare the contract-level shape).
    full = build_scheme("EO-0.8-1-TR").compress(stream.head, seed=0).graph
    kept = maintainers["EO-0.8-1-TR"].compressed
    print(
        f"EO-0.8-1-TR on final head: incremental kept {kept.num_edges} edges, "
        f"batch recompress kept {full.num_edges}"
    )

    print("\ngeneration ledger (fingerprint-linked):")
    for row in stream.ledger():
        print(
            f"  gen {row['index']}: m={row['num_edges']:>5} "
            f"fingerprint {row['fingerprint'][:12]}… "
            f"delta {(row['delta_id'] or 'base')[:12]}"
        )


if __name__ == "__main__":
    main()
