#!/usr/bin/env python
"""Shortest paths on a weighted road network — where TR *cannot* help.

§7.1's weighted-graph finding: "For very sparse graphs, such as the US
road network, compression ratio and thus speedups ... from TR is very
low" — road networks are triangle-free, so Triangle Reduction has nothing
to reduce.  Spanners, on the other hand, still compress (they keep
shortest-path trees plus sparse inter-cluster links) at a bounded
distance stretch.

This example runs both schemes on the v-usa stand-in and compares:
edge reduction, SSSP distance stretch, and MST weight.

Run:  python examples/road_network_shortest_paths.py
"""

import numpy as np

from repro import datasets, make_scheme
from repro.algorithms import dijkstra, minimum_spanning_forest


def main() -> None:
    road = datasets.load("v-usa", seed=0)
    print(f"road network: {road} (weighted, triangle-free)\n")

    source = 0
    base = dijkstra(road, source)
    base_mst = minimum_spanning_forest(road).total_weight

    for spec in ["0.9-1-TR", "spanner(k=4)"]:
        result = make_scheme(spec).compress(road, seed=1)
        sub = result.graph

        sp = dijkstra(sub, source)
        both = np.isfinite(base.distance) & np.isfinite(sp.distance) & (base.distance > 0)
        stretch = (
            float(np.max(sp.distance[both] / base.distance[both])) if both.any() else 1.0
        )
        mst = minimum_spanning_forest(sub).total_weight

        print(f"{spec}:")
        print(f"  edges removed     : {result.edge_reduction:7.1%}")
        print(f"  max SSSP stretch  : {stretch:7.3f}x")
        print(f"  MST weight        : {base_mst:,.0f} -> {mst:,.0f}")
        print()

    print(
        "TR removed nothing (no triangles), so distances are exact but\n"
        "storage is unchanged; the spanner trades bounded stretch for a\n"
        "real reduction — choose by consulting Table 3 first (§7.5)."
    )


if __name__ == "__main__":
    main()
