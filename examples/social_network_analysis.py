#!/usr/bin/env python
"""Approximate social-network analytics on a compressed graph.

The workload the paper's introduction motivates: a triangle-dense social
network (the Catster/Dogster regime, T/n in the hundreds) where the
analyst wants communities, influencers, and triangle statistics — but the
graph is too big to keep exact.

This example compresses with Edge-Once Triangle Reduction (the scheme
§6.1 proves gentle on matchings, components, and shortest paths), then
compares the full analytics battery before/after:

- connected components (should be preserved exactly — §7.2),
- PageRank influencers (top-10 overlap),
- per-vertex triangle counts (reordered-pair metric),
- maximal matching size (≥ 2/3 bound).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import datasets, make_scheme
from repro.algorithms import (
    connected_components,
    greedy_matching,
    pagerank,
)
from repro.algorithms.triangles import triangles_per_vertex
from repro.metrics import reordered_neighbor_pairs


def main() -> None:
    graph = datasets.load("s-cds", seed=0)
    print(f"social network: {graph} (T/n is high: dense pet communities)\n")

    scheme = make_scheme("EO-0.8-1-TR")
    result = scheme.compress(graph, seed=1)
    compressed = result.graph
    print(
        f"compressed with {scheme!r}: kept {result.compression_ratio:.1%} of edges\n"
    )

    # 1. Communities: EO-TR never cuts a triangle's last cycle edge first,
    #    so the component structure survives.
    cc0 = connected_components(graph).num_components
    cc1 = connected_components(compressed).num_components
    print(f"connected components : {cc0} -> {cc1}"
          f" ({'preserved' if cc0 == cc1 else 'CHANGED'})")

    # 2. Influencers: rank overlap of the top 10.
    top0 = set(pagerank(graph).top(10).tolist())
    top1 = set(pagerank(compressed).top(10).tolist())
    print(f"top-10 PageRank overlap: {len(top0 & top1)}/10")

    # 3. Triangle statistics per vertex.
    tv0 = triangles_per_vertex(graph).astype(float)
    tv1 = triangles_per_vertex(compressed).astype(float)
    flipped = reordered_neighbor_pairs(graph, tv0, tv1)
    print(f"triangle-count order : {flipped:.2%} of neighboring pairs flipped")

    # 4. Matching (the §6.1 2/3 bound, on the greedy proxy).
    m0 = greedy_matching(graph).size
    m1 = greedy_matching(compressed).size
    print(f"maximal matching     : {m0} -> {m1} "
          f"(ratio {m1 / m0:.2f}; theory floor ~0.67)")


if __name__ == "__main__":
    main()
