#!/usr/bin/env python
"""Approximate PageRank over a compressed web crawl, with error analysis.

The motivating workload of the paper's introduction: PageRank on web
graphs so large that a run takes minutes on a top-10 supercomputer.  Here
we compress a web-crawl stand-in at several budgets and chart the §5
accuracy metrics against the storage saved — the Table 5 methodology as a
library call, including the divergence-selection comparison (KL vs the
alternatives the paper surveyed).

Run:  python examples/web_pagerank_approximation.py
"""

from repro import Session, datasets, pagerank
from repro.analytics.report import format_table
from repro.metrics.divergences import all_divergences


def main() -> None:
    web = datasets.load("h-wen", seed=0)
    print(f"web crawl stand-in: {web}\n")

    # One session: the original PageRank run happens once, the five
    # schemes each get scored against the cached baseline.
    session = Session(web, seed=1)

    rows = []
    for spec in [
        "spectral(p=0.5)",
        "spectral(p=0.1)",
        "uniform(p=0.5)",
        "uniform(p=0.1)",
        "spanner(k=8)",
    ]:
        run = session.compress(spec).run(pagerank)
        scores = run.score(["kl", "reordered_pairs"])
        out0, out1 = run.outputs("pagerank")
        div = all_divergences(out0.ranks, out1.ranks)
        rows.append(
            [
                spec,
                run.compression_ratio,
                scores["kl_divergence"],
                div["js"],
                div["total_variation"],
                scores["reordered_neighbor_pairs"],
            ]
        )

    print(
        format_table(
            rows,
            ["scheme", "kept", "KL", "JS", "TV", "reordered_pairs"],
            title="PageRank accuracy vs storage (Table 5 methodology)",
        )
    )
    print(
        "KL is the paper's pick (§5: the only divergence that is both an\n"
        "f-divergence and a Bregman divergence); JS/TV shown for the\n"
        "selection comparison.  Note spectral at equal budget keeps KL\n"
        "lower than uniform — the spectrum-preserving sampling at work."
    )


if __name__ == "__main__":
    main()
